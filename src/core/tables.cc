// EvalTables construction: interned per-rule transition matrices, built
// serially or wave-parallel over the SLP's dependency levels, against a
// private or cross-document-shared product memo (core/prepare_memo.h).
#include "core/tables.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>
#include <unordered_map>
#include <utility>

#include "core/prepare_memo.h"
#include "util/mutex.h"
#include "util/thread_pool.h"

namespace slpspan {

namespace {

using core_internal::HashBoolMatrix;
using core_internal::SharedPrepareMemo;

/// One bottom-up preparation pass (Lemma 6.5), scheduled wave-by-wave over
/// derivation depth. Non-terminals within a wave only read results of
/// earlier waves, so they are processed concurrently when opts.threads > 1;
/// waves are separated by a ThreadPool::WaitIdle barrier.
///
/// All produced matrices are interned into an arena. With opts.memoize,
/// Multiply and Or are additionally cached by operand index pair: on
/// repetitive grammars the same rule shape — the same pair of child-matrix
/// indices — recurs thousands of times, and every recurrence is a hash
/// lookup instead of an O(q³/w) product. The memo, interner and arena live
/// in a SharedPrepareMemo: private to this build by default, or — corpus
/// runs — supplied by the caller and shared across the preparations of
/// many documents, so products an earlier document computed are memo hits
/// here. The memo's one mutex is taken only when anything can run
/// concurrently (parallel build or shared memo); the expensive
/// multiplications always run outside it, so distinct products still
/// parallelize. Two workers racing on the same missing product both
/// compute it — the interner deduplicates the result and the memo insert
/// is idempotent, so the race costs duplicate work, never correctness.
class TableBuilder {
 public:
  TableBuilder(const Slp& slp, const Nfa& nfa, const PrepareOptions& opts,
               std::vector<uint32_t>* u_idx, std::vector<uint32_t>* w_idx,
               std::vector<uint32_t>* leaf_index,
               std::vector<std::vector<std::vector<MarkerMask>>>* leaf_cells)
      : slp_(slp),
        nfa_(nfa),
        memoize_(opts.memoize),
        q_(nfa.NumStates()),
        // Upper bound on arena slots: 2 per leaf (U, W) and — memoized —
        // up to 5 per inner rule (U, U|W, two partial products, W).
        slots_(2ull * (slp.NumNonTerminals() - slp.NumInnerNonTerminals()) +
               5ull * slp.NumInnerNonTerminals() + 1),
        shared_(AttachShared(opts, slots_, q_)),
        local_(shared_ ? nullptr : std::make_unique<SharedPrepareMemo>(slots_)),
        memo_(shared_ ? shared_.get() : local_.get()),
        u_idx_(u_idx),
        w_idx_(w_idx),
        leaf_cells_(leaf_cells) {
    uint32_t threads = opts.threads;
    if (threads == 0) threads = std::thread::hardware_concurrency();
    // Never oversubscribe: extra workers on a core-starved host only add
    // scheduler and lock-handoff overhead (bench E13 measures the pass, not
    // the scheduler). Requested vs effective shows up in PrepareStats.
    threads_ = std::max(
        1u, std::min(threads, std::max(1u, std::thread::hardware_concurrency())));
    parallel_ = threads_ > 1;
    // A shared memo is touched by other documents' builders concurrently,
    // so locking is unconditional there even for a serial wave schedule.
    lock_ = parallel_ || shared_ != nullptr;

    const uint32_t n = slp.NumNonTerminals();
    leaf_index->assign(n, UINT32_MAX);
    for (NtId a = 0; a < n; ++a) {
      if (slp.IsLeaf(a)) {
        (*leaf_index)[a] = static_cast<uint32_t>(leaf_cells->size());
        leaf_cells->emplace_back(static_cast<size_t>(q_) * q_);
      }
    }
    leaf_index_ = leaf_index;
    if (memoize_ && !shared_) {
      // One entry per inner rule worst-case; reserving up front keeps the
      // hit path free of rehash passes (which would re-walk the whole table
      // log(n) times over a large grammar). A shared memo persists across
      // preparations and sizes itself as it grows.
      util::MutexLock lock(&memo_->mu);
      memo_->rule_memo.reserve(slp.NumInnerNonTerminals());
    }
  }

  ~TableBuilder() {
    if (shared_) memo_->Release(slots_);
  }

  TableBuilder(const TableBuilder&) = delete;
  TableBuilder& operator=(const TableBuilder&) = delete;

  void Run() {
    // Wave t holds the non-terminals of derivation depth t + 1; every level
    // 1..depth(S) is populated (each inner rule has a child one level down).
    std::vector<std::vector<NtId>> waves(slp_.depth());
    for (NtId a = 0; a < slp_.NumNonTerminals(); ++a) {
      waves[slp_.Depth(a) - 1].push_back(a);
    }

    std::unique_ptr<util::ThreadPool> pool;
    if (parallel_) pool = std::make_unique<util::ThreadPool>(threads_ - 1);

    for (const std::vector<NtId>& wave : waves) {
      // Small waves run inline: fanning out work that is cheaper than the
      // task handoff only adds overhead (and most waves near the root hold
      // a handful of rules).
      if (!pool || wave.size() < 2 * kGrain) {
        for (const NtId a : wave) Process(a);
        continue;
      }
      std::atomic<size_t> next{0};
      const uint32_t helpers = static_cast<uint32_t>(std::min<size_t>(
          threads_ - 1, wave.size() / kGrain - 1));
      for (uint32_t t = 0; t < helpers; ++t) {
        pool->Submit([this, &wave, &next] { Drain(wave, &next); });
      }
      Drain(wave, &next);
      pool->WaitIdle();  // wave barrier: publishes this wave's u/w indices
    }
  }

  void FillStats(PrepareStats* stats) const {
    stats->rules = slp_.NumNonTerminals();
    // A rule-shape hit stands for the per-operation memo hits the slow path
    // would have recorded for that shape (3-5 ops; see Process).
    const uint64_t rule_ops = rule_hit_ops_.load(std::memory_order_relaxed);
    stats->products = products_.load(std::memory_order_relaxed) + rule_ops;
    stats->memo_hits = memo_hits_.load(std::memory_order_relaxed) + rule_ops;
    stats->distinct_products = stats->products - stats->memo_hits;
    stats->waves = slp_.depth();
    stats->threads = threads_;
  }

  /// Materializes the matrices actually referenced by u_idx/w_idx into
  /// `pool` in first-reference order — exactly the order the historical
  /// serial-naive interner produced — and rewrites the indices.
  /// Intermediates (partial products no non-terminal references) are
  /// dropped, so the final tables are bit-identical across naive, memoized,
  /// parallel and shared-memo builds. A private arena is moved from; a
  /// shared arena is copied from (its matrices stay live for the other
  /// documents of the corpus run).
  void CompactInto(std::vector<BoolMatrix>* pool) {
    // Keyed remap rather than a dense one: a shared arena's size can grow
    // concurrently (other documents appending), so it cannot be read here.
    std::unordered_map<uint32_t, uint32_t> remap;
    remap.reserve(2 * slp_.NumNonTerminals());
    for (NtId a = 0; a < slp_.NumNonTerminals(); ++a) {
      for (uint32_t* slot : {&(*u_idx_)[a], &(*w_idx_)[a]}) {
        const auto [it, inserted] =
            remap.emplace(*slot, static_cast<uint32_t>(pool->size()));
        if (inserted) {
          if (shared_) {
            pool->push_back(memo_->arena.at(*slot));
          } else {
            pool->push_back(std::move(memo_->arena.mutable_at(*slot)));
          }
        }
        *slot = it->second;
      }
    }
  }

 private:
  static constexpr size_t kGrain = 16;  // rules claimed per atomic fetch

  /// Admission: attach to the caller's shared memo when sharing is on and
  /// the worst case fits, else run against a private memo. Sharing without
  /// memoization is pointless (the naive pass interns only final tables and
  /// consults no memo), so it is treated as unshared, not as a fallback.
  static std::shared_ptr<SharedPrepareMemo> AttachShared(
      const PrepareOptions& opts, size_t slots, uint32_t q) {
    if (!opts.shared_memo || !opts.memoize) return nullptr;
    if (!opts.shared_memo->TryReserve(slots, q)) return nullptr;
    return opts.shared_memo;
  }

  /// Interns `m`: returns the index of an equal arena matrix or appends.
  /// Caller holds the lock whenever concurrency is possible
  /// (OptionalMutexLock claims the capability on both paths, so the
  /// analysis checks serial mode too).
  uint32_t InternLocked(BoolMatrix m) REQUIRES(memo_->mu) {
    std::vector<uint32_t>& bucket = memo_->by_hash[HashBoolMatrix(m)];
    for (const uint32_t idx : bucket) {
      if (memo_->arena.at(idx) == m) return idx;
    }
    // Pool matrices are multiply operands from here on: freeze the density
    // profile now, while this thread still owns the matrix exclusively.
    if (!m.has_row_popcounts()) m.CacheRowPopcounts();
    bucket.push_back(memo_->arena.Append(std::move(m)));
    return bucket.back();
  }

  static uint64_t PackPair(uint32_t i, uint32_t j) {
    return (static_cast<uint64_t>(i) << 32) | j;
  }

  /// Memoized boolean product arena[i] · arena[j].
  uint32_t Mul(uint32_t i, uint32_t j) {
    products_.fetch_add(1, std::memory_order_relaxed);
    const uint64_t key = PackPair(i, j);
    {
      util::OptionalMutexLock lock(&memo_->mu, lock_);
      const auto it = memo_->mul_memo.find(key);
      if (it != memo_->mul_memo.end()) {
        memo_hits_.fetch_add(1, std::memory_order_relaxed);
        return it->second;
      }
    }
    BoolMatrix m = BoolMatrix::Multiply(memo_->arena.at(i), memo_->arena.at(j));
    util::OptionalMutexLock lock(&memo_->mu, lock_);
    const uint32_t k = InternLocked(std::move(m));
    memo_->mul_memo.emplace(key, k);
    return k;
  }

  /// Memoized boolean sum arena[i] | arena[j] (commutative — key
  /// normalized; i == j is the identity and costs nothing).
  uint32_t OrOf(uint32_t i, uint32_t j) {
    if (i == j) return i;
    products_.fetch_add(1, std::memory_order_relaxed);
    const uint64_t key = PackPair(std::min(i, j), std::max(i, j));
    {
      util::OptionalMutexLock lock(&memo_->mu, lock_);
      const auto it = memo_->or_memo.find(key);
      if (it != memo_->or_memo.end()) {
        memo_hits_.fetch_add(1, std::memory_order_relaxed);
        return it->second;
      }
    }
    BoolMatrix m = memo_->arena.at(i);
    m.OrWith(memo_->arena.at(j));
    util::OptionalMutexLock lock(&memo_->mu, lock_);
    const uint32_t k = InternLocked(std::move(m));
    memo_->or_memo.emplace(key, k);
    return k;
  }

  void Drain(const std::vector<NtId>& wave, std::atomic<size_t>* next) {
    for (;;) {
      const size_t begin = next->fetch_add(kGrain, std::memory_order_relaxed);
      if (begin >= wave.size()) return;
      const size_t end = std::min(begin + kGrain, wave.size());
      for (size_t i = begin; i < end; ++i) Process(wave[i]);
    }
  }

  void Process(NtId a) {
    if (slp_.IsLeaf(a)) {
      ProcessLeaf(a);
      return;
    }
    // U_A = U_B·U_C ;  W_A = (U_B|W_B)·W_C ∨ W_B·U_C.
    const NtId b = slp_.Left(a), c = slp_.Right(a);
    const uint32_t ub = (*u_idx_)[b], wb = (*w_idx_)[b];
    const uint32_t uc = (*u_idx_)[c], wc = (*w_idx_)[c];
    if (!memoize_) {
      // Naive reference pass (kept for benchmarking and differential
      // testing): every product is computed; only the final U/W land in the
      // interner, exactly like the pre-memoization builder.
      products_.fetch_add(5, std::memory_order_relaxed);
      BoolMatrix u =
          BoolMatrix::Multiply(memo_->arena.at(ub), memo_->arena.at(uc));
      BoolMatrix any_b = memo_->arena.at(ub);
      any_b.OrWith(memo_->arena.at(wb));
      BoolMatrix w = BoolMatrix::Multiply(any_b, memo_->arena.at(wc));
      w.OrWith(BoolMatrix::Multiply(memo_->arena.at(wb), memo_->arena.at(uc)));
      util::OptionalMutexLock lock(&memo_->mu, lock_);
      (*u_idx_)[a] = InternLocked(std::move(u));
      (*w_idx_)[a] = InternLocked(std::move(w));
      return;
    }
    // Rule-shape fast path: on repetitive grammars the same child-matrix
    // quadruple recurs thousands of times — across documents of a corpus
    // run as well as within one — and one lookup replaces the five
    // per-operation memo probes (the difference between ~5 and ~1 hash
    // walks per rule dominates when q is small enough that even a computed
    // product is cheap).
    const SharedPrepareMemo::RuleKey rule_key{PackPair(ub, wb),
                                              PackPair(uc, wc)};
    {
      util::OptionalMutexLock lock(&memo_->mu, lock_);
      const auto it = memo_->rule_memo.find(rule_key);
      if (it != memo_->rule_memo.end()) {
        rule_hit_ops_.fetch_add(it->second.ops, std::memory_order_relaxed);
        (*u_idx_)[a] = it->second.u;
        (*w_idx_)[a] = it->second.w;
        return;
      }
    }
    const uint32_t u = Mul(ub, uc);
    const uint32_t any_b = OrOf(ub, wb);
    const uint32_t w_marked_right = Mul(any_b, wc);
    const uint32_t w_marked_left = Mul(wb, uc);
    const uint32_t w = OrOf(w_marked_right, w_marked_left);
    (*u_idx_)[a] = u;
    (*w_idx_)[a] = w;
    // Ops this shape actually records per evaluation: three products plus
    // each Or that is not an i == j identity — a hit must credit the same
    // count, or products/hit-rate would overstate the work memoized.
    const uint32_t ops = 3 + (ub != wb) + (w_marked_right != w_marked_left);
    util::OptionalMutexLock lock(&memo_->mu, lock_);
    memo_->rule_memo.emplace(rule_key,
                             SharedPrepareMemo::RuleValue{u, w, ops});
  }

  void ProcessLeaf(NtId a) {
    // Leaf tables (Lemma 6.5): M_Tx[i,j] = { p(A1 x) : i --A1 x--> j }.
    const SymbolId x = slp_.LeafSymbol(a);
    auto& cells = (*leaf_cells_)[(*leaf_index_)[a]];
    BoolMatrix u(q_);
    BoolMatrix w(q_);
    for (StateId i = 0; i < q_; ++i) {
      // Direct char arc: the unmarked word x, element ∅.
      for (const Nfa::CharArc& ca : nfa_.CharArcsFrom(i)) {
        if (ca.sym == x) {
          cells[i * q_ + ca.to].push_back(0);
          u.Set(i, ca.to);
        }
      }
      // Marker set then char: i --mask--> l --x--> j, element {(1, mask)}.
      for (const Nfa::MarkArc& ma : nfa_.MarkArcsFrom(i)) {
        for (const Nfa::CharArc& ca : nfa_.CharArcsFrom(ma.to)) {
          if (ca.sym == x) {
            cells[i * q_ + ca.to].push_back(ma.mask);
            w.Set(i, ca.to);
          }
        }
      }
    }
    {
      util::OptionalMutexLock lock(&memo_->mu, lock_);
      (*u_idx_)[a] = InternLocked(std::move(u));
      (*w_idx_)[a] = InternLocked(std::move(w));
    }
    // Sort every cell by the paper's ⪯ (non-empty masks first — the empty
    // set is a prefix of everything, hence largest) and deduplicate.
    for (auto& cell : cells) {
      std::sort(cell.begin(), cell.end(), [](MarkerMask m1, MarkerMask m2) {
        return CompareMasks(m1, m2) < 0;
      });
      cell.erase(std::unique(cell.begin(), cell.end()), cell.end());
    }
  }

  const Slp& slp_;
  const Nfa& nfa_;
  const bool memoize_;
  const uint32_t q_;
  const size_t slots_;  // worst-case arena appends of this preparation

  // The memo this build runs against: the caller's shared instance when
  // admission succeeded (shared_ keeps it alive), else a private one sized
  // to this preparation's exact worst case. memo_ is the single access
  // path for both (const so the analysis can track memo_->mu).
  const std::shared_ptr<SharedPrepareMemo> shared_;
  const std::unique_ptr<SharedPrepareMemo> local_;
  SharedPrepareMemo* const memo_;

  uint32_t threads_ = 1;
  bool parallel_ = false;
  bool lock_ = false;  // take memo_->mu (parallel build or shared memo)

  std::vector<uint32_t>* u_idx_;
  std::vector<uint32_t>* w_idx_;
  std::vector<uint32_t>* leaf_index_ = nullptr;
  std::vector<std::vector<std::vector<MarkerMask>>>* leaf_cells_;

  std::atomic<uint64_t> products_{0};
  std::atomic<uint64_t> memo_hits_{0};
  std::atomic<uint64_t> rule_hit_ops_{0};
};

}  // namespace

EvalTables::EvalTables(const Slp& slp, const Nfa& nfa,
                       const PrepareOptions& opts, PrepareStats* stats) {
  SLPSPAN_CHECK(!nfa.HasEpsArcs());
  q_ = nfa.NumStates();
  const uint32_t n = slp.NumNonTerminals();
  u_idx_.resize(n);
  w_idx_.resize(n);

  TableBuilder builder(slp, nfa, opts, &u_idx_, &w_idx_, &leaf_index_,
                       &leaf_cells_);
  builder.Run();
  builder.CompactInto(&pool_);
  if (stats != nullptr) {
    builder.FillStats(stats);
    stats->pool_matrices = pool_.size();
  }
}

Result<EvalTables> EvalTables::FromParts(
    const Slp& slp, uint32_t q, std::vector<BoolMatrix> pool,
    std::vector<uint32_t> u_idx, std::vector<uint32_t> w_idx,
    std::vector<std::vector<std::vector<MarkerMask>>> leaf_cells) {
  const uint32_t n = slp.NumNonTerminals();
  if (pool.empty()) return Status::Corruption("empty matrix pool");
  for (const BoolMatrix& m : pool) {
    if (m.n() != q) {
      return Status::Corruption("eval-table matrix has wrong dimension");
    }
  }
  if (u_idx.size() != n || w_idx.size() != n) {
    return Status::Corruption("matrix index count does not match grammar");
  }
  // Adopted pool matrices serve as multiply operands (model checking builds
  // on top of loaded tables): give them the same frozen density profile a
  // built pool carries. The bundle loader already cached most of them.
  for (BoolMatrix& m : pool) {
    if (!m.has_row_popcounts()) m.CacheRowPopcounts();
  }
  for (uint32_t a = 0; a < n; ++a) {
    if (u_idx[a] >= pool.size() || w_idx[a] >= pool.size()) {
      return Status::Corruption("matrix index out of range");
    }
  }
  EvalTables tables;
  tables.q_ = q;
  tables.leaf_index_.assign(n, UINT32_MAX);
  size_t next_leaf = 0;
  for (NtId a = 0; a < n; ++a) {
    if (!slp.IsLeaf(a)) continue;
    if (next_leaf >= leaf_cells.size()) {
      return Status::Corruption("missing leaf cells");
    }
    if (leaf_cells[next_leaf].size() != static_cast<size_t>(q) * q) {
      return Status::Corruption("leaf cell grid has wrong dimension");
    }
    tables.leaf_index_[a] = static_cast<uint32_t>(next_leaf++);
  }
  if (next_leaf != leaf_cells.size()) {
    return Status::Corruption("extra leaf cells");
  }
  tables.pool_ = std::move(pool);
  tables.u_idx_ = std::move(u_idx);
  tables.w_idx_ = std::move(w_idx);
  tables.leaf_cells_ = std::move(leaf_cells);
  return tables;
}

uint64_t EvalTables::MemoryUsage() const {
  uint64_t bytes = sizeof(*this);
  for (const BoolMatrix& m : pool_) bytes += m.MemoryUsage();
  bytes += u_idx_.capacity() * sizeof(uint32_t);
  bytes += w_idx_.capacity() * sizeof(uint32_t);
  bytes += leaf_index_.capacity() * sizeof(uint32_t);
  bytes += leaf_cells_.capacity() * sizeof(std::vector<std::vector<MarkerMask>>);
  for (const auto& cells : leaf_cells_) {
    bytes += cells.capacity() * sizeof(std::vector<MarkerMask>);
    for (const auto& cell : cells) bytes += cell.capacity() * sizeof(MarkerMask);
  }
  return bytes;
}

int32_t EvalTables::NextIntermediate(const Slp& slp, NtId a, StateId i, StateId j,
                                     int32_t after) const {
  const NtId b = slp.Left(a), c = slp.Right(a);
  for (uint32_t k = static_cast<uint32_t>(after + 1); k < q_; ++k) {
    if (NonBot(b, i, k) && NonBot(c, k, j)) return static_cast<int32_t>(k);
  }
  return -1;
}

std::vector<StateId> EvalTables::AcceptingNonBot(const Slp& slp, const Nfa& nfa) const {
  std::vector<StateId> out;
  for (StateId j = 0; j < q_; ++j) {
    if (nfa.IsAccepting(j) && NonBot(slp.root(), 0, j)) out.push_back(j);
  }
  return out;
}

}  // namespace slpspan
