// Cross-preparation product memo: the hash-consed matrix arena and the
// product/rule-shape memo tables of the Lemma 6.5 table builder, factored
// out of core/tables.cc so one instance can be *shared* across the
// preparations of many documents against the same query. The distinct
// matrix products of one query repeat heavily across a corpus — later
// documents hit the memo where the first document paid the O(q³/w)
// product — which is the corpus layer's cross-document reuse (see
// docs/CORPUS.md). A private instance per preparation reproduces the
// historical single-document behavior exactly.

#ifndef SLPSPAN_CORE_PREPARE_MEMO_H_
#define SLPSPAN_CORE_PREPARE_MEMO_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/bool_matrix.h"
#include "util/mutex.h"

namespace slpspan {
namespace core_internal {

/// Content hash of a matrix (FNV-1a over the row words) — the interner's
/// bucket key. Collisions are resolved by full equality comparison.
uint64_t HashBoolMatrix(const BoolMatrix& m);

/// Append-only matrix arena with stable addresses: storage is a chain of
/// fixed-size blocks whose pointer vector is reserved up front, so workers
/// may read any already-published slot while another thread appends — no
/// reallocation ever moves a matrix. Indices are published to other threads
/// only through the owning memo's mutex (memo/interner inserts) or through
/// a wave barrier, which provides the happens-before edge for the contents.
/// Every slot holds a BoolMatrix and therefore obeys the kernel layer's
/// alignment contract (32-byte aligned, padded rows) — arena-built and
/// bundle-adopted matrices hit the same SIMD fast path. Interned matrices
/// additionally carry cached row popcounts (density profile for the
/// adaptive multiply), frozen before publication so readers never race.
class MatrixArena {
 public:
  explicit MatrixArena(size_t capacity) : capacity_(capacity) {
    blocks_.reserve(capacity / kBlock + 2);
  }

  const BoolMatrix& at(uint32_t i) const {
    return (*blocks_[i >> kShift])[i & (kBlock - 1)];
  }
  BoolMatrix& mutable_at(uint32_t i) {
    return (*blocks_[i >> kShift])[i & (kBlock - 1)];
  }

  /// Appends `m` and returns its index. Caller serializes appends (the
  /// owning memo's mutex when any concurrency is possible).
  uint32_t Append(BoolMatrix m) {
    SLPSPAN_CHECK(size_ < capacity_);  // reserve() bound — never reallocates
    if (size_ == blocks_.size() * kBlock) {
      blocks_.push_back(std::make_unique<std::array<BoolMatrix, kBlock>>());
    }
    const uint32_t idx = static_cast<uint32_t>(size_++);
    mutable_at(idx) = std::move(m);
    return idx;
  }

  /// Slots appended so far. Only meaningful to a caller that serializes
  /// with appends (the owning memo's mutex).
  size_t size() const { return size_; }
  size_t capacity() const { return capacity_; }

 private:
  static constexpr uint32_t kShift = 9;
  static constexpr uint32_t kBlock = 1u << kShift;

  size_t capacity_;
  size_t size_ = 0;
  std::vector<std::unique_ptr<std::array<BoolMatrix, kBlock>>> blocks_;
};

/// The interner + product memo a table build runs against. One preparation
/// owns a private instance sized to its exact worst case; a corpus run
/// hands the same instance to every preparation of one query so products
/// computed for an earlier document are memo hits for later ones.
///
/// Sharing discipline: all maps, the `q`/`reserved` fields and arena
/// *appends* are guarded by `mu`; already-published arena slots are
/// deliberately read lock-free (see MatrixArena). Admission is
/// reservation-based — a builder reserves its worst-case slot count up
/// front via TryReserve and releases it again when it finishes, so the
/// arena's no-reallocation CHECK stays unreachable. When the reservation
/// does not fit (or the automaton size differs), the builder falls back to
/// a private memo and the preparation proceeds unshared, never fails.
struct SharedPrepareMemo {
  struct RuleKey {
    uint64_t left, right;  // (U_B, W_B) and (U_C, W_C) arena-index pairs
    bool operator==(const RuleKey&) const = default;
  };
  struct RuleValue {
    uint32_t u, w;  // resulting U_A/W_A arena indices
    uint32_t ops;   // memoizable ops one evaluation of this shape records
  };
  struct RuleKeyHash {
    size_t operator()(const RuleKey& k) const {
      const uint64_t h = k.left * 0x9E3779B97F4A7C15ull ^
                         k.right * 0xC2B2AE3D27D4EB4Full;
      return static_cast<size_t>(h ^ (h >> 32));
    }
  };

  /// Default shared-arena capacity. Bounds how many *distinct* matrices one
  /// corpus run can intern (block pointers for the bound are reserved up
  /// front — 64 KiB of pointers; matrix storage itself is allocated on
  /// demand). Preparations whose worst case no longer fits fall back to
  /// private memos.
  static constexpr size_t kDefaultSharedCapacity = size_t{1} << 22;

  explicit SharedPrepareMemo(size_t capacity = kDefaultSharedCapacity)
      : arena(capacity) {}

  /// Admits a preparation that may append up to `slots` matrices for an
  /// automaton with `q_states` states. The first reservation pins the
  /// automaton size; mismatching or over-capacity reservations are refused
  /// (counted in `fallbacks`).
  bool TryReserve(size_t slots, uint32_t q_states) EXCLUDES(mu);

  /// Returns a reservation when its preparation is done. The builder's
  /// appends stay in the arena (that is the point); only the admission
  /// head-room is given back.
  void Release(size_t slots) EXCLUDES(mu);

  util::Mutex mu;
  /// Appends under `mu`; published slots are read lock-free (class doc).
  MatrixArena arena;
  std::unordered_map<uint64_t, std::vector<uint32_t>> by_hash GUARDED_BY(mu);
  std::unordered_map<uint64_t, uint32_t> mul_memo GUARDED_BY(mu);
  std::unordered_map<uint64_t, uint32_t> or_memo GUARDED_BY(mu);
  std::unordered_map<RuleKey, RuleValue, RuleKeyHash> rule_memo GUARDED_BY(mu);

  uint32_t q GUARDED_BY(mu) = 0;       ///< pinned by the first reservation
  size_t reserved GUARDED_BY(mu) = 0;  ///< outstanding admission head-room

  std::atomic<uint64_t> preparations{0};  ///< builders admitted
  std::atomic<uint64_t> fallbacks{0};     ///< reservations refused
};

}  // namespace core_internal
}  // namespace slpspan

#endif  // SLPSPAN_CORE_PREPARE_MEMO_H_
