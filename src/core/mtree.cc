// (M,S)-trees and their enumeration — paper Section 8 / Algorithm 1
// (see core/mtree.h for the node-label structure).
#include "core/mtree.h"

#include <sstream>

namespace slpspan {

int32_t MTreeCursor::FirstK(NtId nt, StateId i, StateId j) const {
  SLPSPAN_DCHECK(tables_->NonBot(nt, i, j));
  if (slp_->IsLeaf(nt) || tables_->R(nt, i, j) == RVal::kEmpty) return kBaseCase;
  const int32_t k = tables_->NextIntermediate(*slp_, nt, i, j, -1);
  SLPSPAN_DCHECK(k >= 0);  // R = 1 on an inner rule implies I_A[i,j] != empty
  return k;
}

int32_t MTreeCursor::NextK(NtId nt, StateId i, StateId j, int32_t cur) const {
  if (cur == kBaseCase) return kExhaustedK;  // Ī = {b} is a singleton
  const int32_t k = tables_->NextIntermediate(*slp_, nt, i, j, cur);
  return k >= 0 ? k : kExhaustedK;
}

int32_t MTreeCursor::NewNode() {
  if (!free_list_.empty()) {
    const int32_t idx = free_list_.back();
    free_list_.pop_back();
    return idx;
  }
  pool_.emplace_back();
  return static_cast<int32_t>(pool_.size() - 1);
}

void MTreeCursor::FreeSubtree(int32_t idx) {
  if (idx < 0) return;
  std::vector<int32_t> stack{idx};
  while (!stack.empty()) {
    const int32_t cur = stack.back();
    stack.pop_back();
    if (pool_[cur].left >= 0) stack.push_back(pool_[cur].left);
    if (pool_[cur].right >= 0) stack.push_back(pool_[cur].right);
    pool_[cur].left = pool_[cur].right = -1;
    free_list_.push_back(cur);
  }
}

int32_t MTreeCursor::BuildFirst(NtId nt, StateId i, StateId j, int32_t k) {
  const int32_t idx = NewNode();
  Node& n = pool_[idx];
  n.nt = nt;
  n.i = i;
  n.j = j;
  n.k = k;
  n.left = n.right = -1;
  if (k == kBaseCase) {
    n.kind = tables_->R(nt, i, j) == RVal::kEmpty ? Kind::kEmptyLeaf : Kind::kTermLeaf;
    SLPSPAN_DCHECK(n.kind == Kind::kEmptyLeaf || slp_->IsLeaf(nt));
    return idx;
  }
  n.kind = Kind::kInner;
  const NtId b = slp_->Left(nt), c = slp_->Right(nt);
  const StateId kk = static_cast<StateId>(k);
  const int32_t left = BuildFirst(b, i, kk, FirstK(b, i, kk));
  const int32_t right = BuildFirst(c, kk, j, FirstK(c, kk, j));
  pool_[idx].left = left;   // n may be dangling after recursive pool growth
  pool_[idx].right = right;
  return idx;
}

void MTreeCursor::Init(NtId nt, StateId i, StateId j, int32_t k) {
  FreeSubtree(root_);
  root_ = BuildFirst(nt, i, j, k);
}

bool MTreeCursor::Advance() { return AdvanceNode(root_); }

bool MTreeCursor::AdvanceNode(int32_t idx) {
  // Odometer per Algorithm 1: the right subtree (the C-loop) spins fastest,
  // then the left subtree (B-loop), then the (k_B, k_C) pair (states-loop,
  // k_C fastest). Base-case nodes represent singleton tree sets.
  //
  // All fields are copied up front: recursive calls may grow the node pool,
  // so references into it must not be held across them. A failed AdvanceNode
  // never mutates its subtree, so the copied child indices stay valid.
  if (pool_[idx].kind != Kind::kInner) return false;
  const NtId nt = pool_[idx].nt;
  const StateId i = pool_[idx].i, j = pool_[idx].j;
  const StateId k = static_cast<StateId>(pool_[idx].k);
  const NtId b = slp_->Left(nt), c = slp_->Right(nt);
  const int32_t left = pool_[idx].left, right = pool_[idx].right;

  if (AdvanceNode(right)) return true;

  if (AdvanceNode(left)) {
    // Within the same (k_B, k_C) pair: right restarts from its first tree.
    const int32_t kc = pool_[right].k;
    FreeSubtree(right);
    const int32_t new_right = BuildFirst(c, k, j, kc);
    pool_[idx].right = new_right;
    return true;
  }

  // Next k_C; both subtrees restart (the TB loop is inside the pair loop).
  const int32_t kc_next = NextK(c, k, j, pool_[right].k);
  if (kc_next != kExhaustedK) {
    const int32_t kb = pool_[left].k;
    FreeSubtree(left);
    FreeSubtree(right);
    const int32_t new_left = BuildFirst(b, i, k, kb);
    const int32_t new_right = BuildFirst(c, k, j, kc_next);
    pool_[idx].left = new_left;
    pool_[idx].right = new_right;
    return true;
  }

  // Next k_B; k_C restarts from the front.
  const int32_t kb_next = NextK(b, i, k, pool_[left].k);
  if (kb_next != kExhaustedK) {
    FreeSubtree(left);
    FreeSubtree(right);
    const int32_t new_left = BuildFirst(b, i, k, kb_next);
    const int32_t new_right = BuildFirst(c, k, j, FirstK(c, k, j));
    pool_[idx].left = new_left;
    pool_[idx].right = new_right;
    return true;
  }
  return false;
}

void MTreeCursor::CollectTermLeaves(std::vector<TermLeaf>* out) const {
  out->clear();
  SLPSPAN_CHECK(root_ >= 0);
  Collect(root_, 0, out);
}

void MTreeCursor::Collect(int32_t idx, uint64_t shift,
                          std::vector<TermLeaf>* out) const {
  // Iterative left-to-right traversal (tree depth can reach depth(S)).
  std::vector<std::pair<int32_t, uint64_t>> stack{{idx, shift}};
  while (!stack.empty()) {
    const auto [cur, cur_shift] = stack.back();
    stack.pop_back();
    const Node& n = pool_[cur];
    switch (n.kind) {
      case Kind::kEmptyLeaf:
        break;
      case Kind::kTermLeaf:
        out->push_back({n.nt, n.i, n.j, cur_shift});
        break;
      case Kind::kInner:
        // Right pushed first so the left subtree is visited first.
        stack.push_back({n.right, cur_shift + slp_->Length(slp_->Left(n.nt))});
        stack.push_back({n.left, cur_shift});
        break;
    }
  }
}

uint32_t MTreeCursor::NumLiveNodes() const {
  if (root_ < 0) return 0;
  uint32_t count = 0;
  std::vector<int32_t> stack{root_};
  while (!stack.empty()) {
    const int32_t idx = stack.back();
    stack.pop_back();
    ++count;
    const Node& n = pool_[idx];
    if (n.left >= 0) stack.push_back(n.left);
    if (n.right >= 0) stack.push_back(n.right);
  }
  return count;
}

std::string MTreeCursor::DebugString(const VariableSet& vars) const {
  (void)vars;
  std::ostringstream os;
  std::vector<std::pair<int32_t, int>> stack{{root_, 0}};
  while (!stack.empty()) {
    auto [idx, indent] = stack.back();
    stack.pop_back();
    if (idx < 0) continue;
    const Node& n = pool_[idx];
    for (int s = 0; s < indent; ++s) os << "  ";
    os << "N" << n.nt << "<" << n.i;
    if (n.kind == Kind::kInner) {
      os << "|" << n.k << "|" << n.j << ">";
    } else {
      os << "|" << n.j << (n.kind == Kind::kEmptyLeaf ? ",e>" : ",1>");
    }
    os << "\n";
    stack.push_back({n.right, indent + 1});
    stack.push_back({n.left, indent + 1});
  }
  return os.str();
}

}  // namespace slpspan
