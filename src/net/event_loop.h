// Minimal epoll wrapper used by the server and the load driver: register
// fds with a caller-chosen u64 tag, wait for readiness, and wake the waiter
// from another thread through an eventfd. Single-consumer — exactly one
// thread calls Wait; Add/Mod/Del/Wake may be called from any thread (epoll
// itself is thread-safe for that split).

#ifndef SLPSPAN_NET_EVENT_LOOP_H_
#define SLPSPAN_NET_EVENT_LOOP_H_

#include <cstdint>
#include <vector>

#include "net/socket.h"
#include "util/status.h"

namespace slpspan {
namespace net {

/// Tag the wake eventfd reports readiness under. Callers must not register
/// their own fds with this tag.
inline constexpr uint64_t kWakeTag = ~uint64_t{0};

class EventLoop {
 public:
  struct Event {
    uint64_t tag = 0;
    uint32_t events = 0;  // EPOLLIN / EPOLLOUT / EPOLLHUP / EPOLLERR bits
  };

  /// Creates the epoll instance and the wake eventfd; Status on failure.
  Status Init();

  Status Add(int fd, uint32_t events, uint64_t tag);
  Status Mod(int fd, uint32_t events, uint64_t tag);
  Status Del(int fd);

  /// Blocks up to timeout_ms (-1 = forever) and appends ready events to
  /// *out (cleared first). A Wake() shows up as an Event with tag kWakeTag,
  /// already drained.
  Status Wait(int timeout_ms, std::vector<Event>* out);

  /// Makes a concurrent (or the next) Wait return. Safe from any thread.
  void Wake();

 private:
  OwnedFd epoll_fd_;
  OwnedFd wake_fd_;
};

}  // namespace net
}  // namespace slpspan

#endif  // SLPSPAN_NET_EVENT_LOOP_H_
