// Server implementation: one epoll event-loop thread accepting and parsing
// framed requests, a Session worker pool evaluating them, and the
// Connection write queues coupling the two with backpressure.
//
// Thread roles (see connection.h for the per-connection contract):
//   * loop thread  — accept, read + frame parse, dispatch (Submit), flush
//     write queues, tear down connections. The only thread that touches
//     epoll state, the connection fd read side, and the doc/query caches.
//   * workers      — run evaluations; deliver pages (EnqueuePage, which
//     blocks for backpressure) and terminal results (CompleteRequest);
//     request a flush via the pending list + loop wake.
//   * control      — Start/Drain/Stop/stats from the embedding application.
//
// Lock order: ServerImpl::mu_ and Connection::mu_ are both leaves and are
// never held together. Ticket::Cancel is only ever invoked on tickets moved
// out of a connection's table, with no lock held, because its completion
// callback re-enters CompleteRequest and the flush path.

#include "slpspan/server.h"

#include <sys/epoll.h>
#include <sys/socket.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "net/connection.h"
#include "net/event_loop.h"
#include "net/frame.h"
#include "net/socket.h"
#include "util/mutex.h"
#include "util/safe_join.h"

namespace slpspan {
namespace net {
namespace {

/// Event tag of the listening socket; connection ids start at 1.
constexpr uint64_t kListenerTag = 0;

/// A client-supplied document ref may only name a file directly under the
/// document root: no separators, no "..", no hidden/empty names. The
/// policy lives in util::SafePathComponent, shared with the corpus layer.
bool ValidDocumentRef(const std::string& name) {
  return util::SafePathComponent(name, kMaxDocumentNameBytes);
}

std::string DefaultAlphabet() {
  std::string a;
  for (char c = 32; c < 127; ++c) a += c;
  a += '\n';
  return a;
}

}  // namespace

class ServerImpl {
 public:
  explicit ServerImpl(ServerOptions opts) : opts_(std::move(opts)) {
    if (opts_.alphabet.empty()) opts_.alphabet = DefaultAlphabet();
    if (opts_.page_tuples == 0) opts_.page_tuples = 1;
  }

  ~ServerImpl() { Stop(); }

  Status Start() {
    if (started_) return Status::InvalidArgument("server already started");
    Status st = loop_.Init();
    if (!st.ok()) return st;
    Result<OwnedFd> listener =
        ListenTcp(opts_.bind_address, opts_.port, /*backlog=*/512);
    if (!listener.ok()) return listener.status();
    listener_ = std::move(listener).value();
    Result<uint16_t> port = LocalPort(listener_.get());
    if (!port.ok()) return port.status();
    port_ = port.value();
    st = loop_.Add(listener_.get(), EPOLLIN, kListenerTag);
    if (!st.ok()) return st;
    session_ = std::make_unique<Session>(SessionOptions{opts_.threads});
    started_ = true;
    loop_thread_ = std::thread([this] { LoopMain(); });
    return Status::OK();
  }

  uint16_t port() const { return port_; }

  bool Drain() {
    if (!started_) return true;
    {
      util::MutexLock lock(&mu_);
      draining_ = true;
    }
    loop_.Wake();  // the loop closes the listener when it sees draining_
    const auto deadline = std::chrono::steady_clock::now() + opts_.drain_timeout;
    bool clean = false;
    {
      util::MutexLock lock(&mu_);
      for (;;) {
        if (inflight_total_ == 0 && AllQueuesEmptyLocked()) {
          clean = true;
          break;
        }
        const auto now = std::chrono::steady_clock::now();
        if (now >= deadline) break;
        // Re-check at least every 10ms: queue-empty transitions have no
        // dedicated notification (the cv covers inflight completions).
        (void)drained_cv_.WaitUntil(
            mu_, std::min(deadline, now + std::chrono::milliseconds(10)));
      }
    }
    if (!clean) {
      close_stragglers_.store(true, std::memory_order_release);
      loop_.Wake();
      // Force-close cancels every straggler's ticket synchronously on the
      // loop thread; wait (bounded) for those completions to land.
      const auto grace =
          std::chrono::steady_clock::now() + std::chrono::seconds(5);
      util::MutexLock lock(&mu_);
      while (inflight_total_ > 0 &&
             std::chrono::steady_clock::now() < grace) {
        (void)drained_cv_.WaitUntil(
            mu_, std::chrono::steady_clock::now() +
                     std::chrono::milliseconds(10));
      }
    }
    return clean;
  }

  void Stop() {
    if (!started_ || stopped_) return;
    (void)Drain();
    stop_.store(true, std::memory_order_release);
    loop_.Wake();
    loop_thread_.join();
    // Workers may still be finishing detached evaluations; Session's
    // destructor completes every submitted ticket before returning.
    session_.reset();
    stopped_ = true;
  }

  Server::Stats stats() const {
    Server::Stats s;
    {
      util::MutexLock lock(&mu_);
      s = retired_;
      s.active_connections = connections_.size();
      for (const auto& [id, conn] : connections_) FoldConnStats(*conn, &s);
    }
    s.total_accepted = total_accepted_.load(std::memory_order_relaxed);
    s.rejected_full = rejected_full_.load(std::memory_order_relaxed);
    s.requests = requests_.load(std::memory_order_relaxed);
    s.bad_frames = bad_frames_.load(std::memory_order_relaxed);
    s.cancelled_on_disconnect =
        cancelled_on_disconnect_.load(std::memory_order_relaxed);
    s.pages_sent = pages_sent_.load(std::memory_order_relaxed);
    s.tuples_sent = tuples_sent_.load(std::memory_order_relaxed);
    if (session_ != nullptr) s.session = session_->stats();
    return s;
  }

 private:
  // ------------------------------------------------------- event loop ------

  void LoopMain() {
    std::vector<EventLoop::Event> events;
    bool listener_open = true;
    while (!stop_.load(std::memory_order_acquire)) {
      if (listener_open) {
        util::MutexLock lock(&mu_);
        if (draining_) listener_open = false;
      }
      if (!listener_open && listener_.valid()) {
        (void)loop_.Del(listener_.get());
        listener_.Reset();
      }
      if (close_stragglers_.exchange(false, std::memory_order_acq_rel)) {
        CloseStragglers();
      }
      Status st = loop_.Wait(/*timeout_ms=*/200, &events);
      if (!st.ok()) continue;  // EINTR-class hiccup; state is intact
      for (const EventLoop::Event& ev : events) {
        if (ev.tag == kWakeTag) {
          FlushPending();
        } else if (ev.tag == kListenerTag) {
          if (listener_open) HandleAccept();
        } else {
          HandleConnEvent(ev);
        }
      }
    }
    // Teardown: close every connection (cancelling its tickets) so Session
    // workers blocked in page sinks unblock and the pool can drain.
    std::vector<uint64_t> ids;
    {
      util::MutexLock lock(&mu_);
      ids.reserve(connections_.size());
      for (const auto& [id, conn] : connections_) ids.push_back(id);
    }
    for (uint64_t id : ids) CloseConnection(id);
  }

  void HandleAccept() {
    for (;;) {
      bool would_block = false;
      Result<OwnedFd> accepted = AcceptConnection(listener_.get(), &would_block);
      if (!accepted.ok() || would_block) return;
      OwnedFd fd = std::move(accepted).value();
      if (!fd.valid()) return;
      size_t active;
      {
        util::MutexLock lock(&mu_);
        active = connections_.size();
      }
      if (active >= opts_.max_connections) {
        rejected_full_.fetch_add(1, std::memory_order_relaxed);
        std::string err;
        AppendError("server at max_connections", &err);
        (void)SendAll(fd.get(), err.data(), err.size());  // best effort
        continue;
      }
      total_accepted_.fetch_add(1, std::memory_order_relaxed);
      const uint64_t id = next_conn_id_++;
      int raw_fd = fd.get();
      if (opts_.socket_sndbuf_bytes > 0) {
        (void)::setsockopt(raw_fd, SOL_SOCKET, SO_SNDBUF,
                           &opts_.socket_sndbuf_bytes,
                           sizeof(opts_.socket_sndbuf_bytes));
      }
      auto conn = std::make_shared<Connection>(std::move(fd), id,
                                               opts_.write_buffer_bytes);
      std::string hello;
      AppendHello(&hello);
      (void)conn->EnqueueControl(std::move(hello));
      {
        util::MutexLock lock(&mu_);
        connections_.emplace(id, conn);
      }
      Status st = loop_.Add(raw_fd, EPOLLIN, id);
      if (!st.ok()) {
        CloseConnection(id);
        continue;
      }
      FlushConn(conn);
    }
  }

  void HandleConnEvent(const EventLoop::Event& ev) {
    std::shared_ptr<Connection> conn = FindConnection(ev.tag);
    if (conn == nullptr) return;
    if ((ev.events & (EPOLLHUP | EPOLLERR)) != 0) {
      CloseConnection(ev.tag);
      return;
    }
    if ((ev.events & EPOLLIN) != 0) {
      if (!HandleReadable(conn)) return;  // connection closed
    }
    if ((ev.events & EPOLLOUT) != 0) FlushConn(conn);
  }

  /// Reads everything available and processes complete frames. Returns
  /// false when the connection was torn down.
  bool HandleReadable(const std::shared_ptr<Connection>& conn) {
    char buf[16384];
    for (;;) {
      bool would_block = false;
      Result<size_t> n = RecvSome(conn->fd(), buf, sizeof(buf), &would_block);
      if (!n.ok()) {
        CloseConnection(conn->id());
        return false;
      }
      if (would_block) break;
      if (n.value() == 0) {  // orderly EOF from the client
        CloseConnection(conn->id());
        return false;
      }
      conn->bytes_in.fetch_add(n.value(), std::memory_order_relaxed);
      conn->read_buffer().append(buf, n.value());
    }
    std::string& rb = conn->read_buffer();
    size_t off = 0;
    while (rb.size() - off >= kFrameHeaderBytes) {
      FrameHeader h =
          DecodeHeader(reinterpret_cast<const uint8_t*>(rb.data() + off));
      if (h.payload_size > kMaxInboundPayload) {
        ProtocolError(conn, "frame exceeds inbound payload cap");
        return false;
      }
      if (rb.size() - off < kFrameHeaderBytes + h.payload_size) break;
      const uint8_t* payload =
          reinterpret_cast<const uint8_t*>(rb.data() + off + kFrameHeaderBytes);
      if (!ProcessFrame(conn, h.type, payload, h.payload_size)) return false;
      off += kFrameHeaderBytes + h.payload_size;
    }
    rb.erase(0, off);
    FlushConn(conn);
    return true;
  }

  /// Dispatches one complete inbound frame. Returns false when the
  /// connection was torn down (protocol violation).
  bool ProcessFrame(const std::shared_ptr<Connection>& conn, uint8_t type,
                    const uint8_t* payload, size_t size) {
    switch (static_cast<FrameType>(type)) {
      case FrameType::kRequest: {
        Result<RequestFrame> req = DecodeRequest(payload, size);
        if (!req.ok()) {
          ProtocolError(conn, "malformed request frame: " +
                                  req.status().message());
          return false;
        }
        DispatchRequest(conn, std::move(req).value());
        return true;
      }
      case FrameType::kCancel: {
        Result<uint64_t> id = DecodeCancel(payload, size);
        if (!id.ok()) {
          ProtocolError(conn, "malformed cancel frame");
          return false;
        }
        // Cancel outside every lock: the completion callback re-enters
        // CompleteRequest and the flush path.
        Ticket t = conn->TakeTicket(id.value());
        if (t.valid()) (void)t.Cancel();
        return true;
      }
      case FrameType::kStatsRequest: {
        std::string frame;
        AppendStats(BuildStatsFrame(), &frame);
        (void)conn->EnqueueControl(std::move(frame));
        return true;
      }
      case FrameType::kError:
        // Peer-reported fatal error: close without a reply.
        CloseConnection(conn->id());
        return false;
      default:
        ProtocolError(conn, "unexpected frame type");
        return false;
    }
  }

  void DispatchRequest(const std::shared_ptr<Connection>& conn,
                       RequestFrame req) {
    requests_.fetch_add(1, std::memory_order_relaxed);
    {
      util::MutexLock lock(&mu_);
      if (draining_) {
        lock.Unlock();
        RejectRequest(conn, req.id, Status::Cancelled("server draining"));
        return;
      }
    }
    if (conn->IdInUse(req.id)) {
      RejectRequest(conn, req.id,
                    Status::InvalidArgument("duplicate request id"));
      return;
    }
    if (!ValidDocumentRef(req.document)) {
      RejectRequest(conn, req.id,
                    Status::InvalidArgument("invalid document ref"));
      return;
    }
    Result<DocumentPtr> doc = LookupDocument(req.document);
    if (!doc.ok()) {
      RejectRequest(conn, req.id, doc.status());
      return;
    }
    Result<Query> query = LookupQuery(req.pattern);
    if (!query.ok()) {
      RejectRequest(conn, req.id, query.status());
      return;
    }

    EngineRequest er{std::move(query).value(), std::move(doc).value(),
                     EngineRequest::Op::kCount, std::nullopt};
    switch (req.op) {
      case WireOp::kCheck:
        er.op = EngineRequest::Op::kIsNonEmpty;
        break;
      case WireOp::kCount:
        er.op = EngineRequest::Op::kCount;
        break;
      case WireOp::kExtract:
        er.op = EngineRequest::Op::kExtract;
        break;
    }
    if (req.limit != UINT64_MAX) er.limit = req.limit;

    SubmitOptions opts;
    opts.priority = static_cast<Priority>(
        std::min<uint8_t>(req.priority, kNumPriorityClasses - 1));
    if (req.deadline_ms != 0) {
      opts.deadline = std::chrono::steady_clock::now() +
                      std::chrono::milliseconds(req.deadline_ms);
    }
    const uint64_t rid = req.id;
    opts.callback = [this, conn, rid](const Result<EngineOutput>& result) {
      std::string frame;
      AppendDone(MakeDone(rid, result), &frame);
      conn->CompleteRequest(rid, std::move(frame));
      RequestFlush(conn->id());
      util::MutexLock lock(&mu_);
      --inflight_total_;
      drained_cv_.NotifyAll();
    };
    if (er.op == EngineRequest::Op::kExtract) {
      opts.page_tuples = opts_.page_tuples;
      opts.on_page = [this, conn, rid](std::span<const SpanTuple> page) {
        std::string frame;
        AppendPage(rid, page, &frame);
        pages_sent_.fetch_add(1, std::memory_order_relaxed);
        tuples_sent_.fetch_add(page.size(), std::memory_order_relaxed);
        conn->pages_sent.fetch_add(1, std::memory_order_relaxed);
        conn->tuples_sent.fetch_add(page.size(), std::memory_order_relaxed);
        // May block — this pause is what backpressures the ResultStream.
        if (!conn->EnqueuePage(std::move(frame))) return false;
        RequestFlush(conn->id());
        return true;
      };
    }
    {
      util::MutexLock lock(&mu_);
      ++inflight_total_;
    }
    Ticket t = session_->Submit(std::move(er), std::move(opts));
    if (!conn->RegisterTicket(rid, std::move(t))) {
      // Completed before registration (or the connection closed) — the
      // callback already delivered; nothing to track.
    }
    FlushConn(conn);
  }

  /// Per-request failure on a healthy connection: a kDone error frame; the
  /// connection stays usable.
  void RejectRequest(const std::shared_ptr<Connection>& conn, uint64_t rid,
                     const Status& status) {
    DoneFrame d;
    d.id = rid;
    d.code = static_cast<uint8_t>(status.code());
    d.message = status.message();
    std::string frame;
    AppendDone(d, &frame);
    (void)conn->EnqueueControl(std::move(frame));
    FlushConn(conn);
  }

  /// Connection-level failure: count it, best-effort error frame, close.
  void ProtocolError(const std::shared_ptr<Connection>& conn,
                     const std::string& message) {
    bad_frames_.fetch_add(1, std::memory_order_relaxed);
    std::string frame;
    AppendError(message, &frame);
    (void)conn->EnqueueControl(std::move(frame));
    FlushConn(conn);
    CloseConnection(conn->id());
  }

  // ------------------------------------------------ connection registry ----

  std::shared_ptr<Connection> FindConnection(uint64_t id) {
    util::MutexLock lock(&mu_);
    auto it = connections_.find(id);
    return it == connections_.end() ? nullptr : it->second;
  }

  void CloseConnection(uint64_t id) {
    std::shared_ptr<Connection> conn;
    {
      util::MutexLock lock(&mu_);
      auto it = connections_.find(id);
      if (it == connections_.end()) return;
      conn = std::move(it->second);
      connections_.erase(it);
      FoldConnStats(*conn, &retired_);
    }
    (void)loop_.Del(conn->fd());
    epollout_armed_.erase(id);
    std::vector<Ticket> orphans = conn->MarkClosed();
    for (Ticket& t : orphans) {
      if (t.valid() && t.Cancel()) {
        cancelled_on_disconnect_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    {
      util::MutexLock lock(&mu_);
      drained_cv_.NotifyAll();
    }
  }

  void CloseStragglers() {
    std::vector<uint64_t> ids;
    {
      util::MutexLock lock(&mu_);
      for (const auto& [id, conn] : connections_) {
        if (conn->InflightCount() > 0 || !conn->WriteQueueEmpty()) {
          ids.push_back(id);
        }
      }
    }
    for (uint64_t id : ids) CloseConnection(id);
  }

  // -------------------------------------------------------- write path -----

  /// Worker-side: schedule a flush of `conn_id` on the loop thread.
  void RequestFlush(uint64_t conn_id) {
    {
      util::MutexLock lock(&mu_);
      flush_pending_.push_back(conn_id);
    }
    loop_.Wake();
  }

  void FlushPending() {
    std::vector<uint64_t> pending;
    {
      util::MutexLock lock(&mu_);
      pending.swap(flush_pending_);
    }
    std::unordered_set<uint64_t> seen;
    for (uint64_t id : pending) {
      if (!seen.insert(id).second) continue;
      std::shared_ptr<Connection> conn = FindConnection(id);
      if (conn != nullptr) FlushConn(conn);
    }
  }

  /// Loop-thread-only: send queued data, (dis)arm EPOLLOUT as needed.
  void FlushConn(const std::shared_ptr<Connection>& conn) {
    bool want_writable = false;
    if (!conn->FlushWrites(&want_writable)) {
      CloseConnection(conn->id());
      return;
    }
    const bool armed = epollout_armed_.count(conn->id()) > 0;
    if (want_writable && !armed) {
      Status st = loop_.Mod(conn->fd(), EPOLLIN | EPOLLOUT, conn->id());
      if (!st.ok()) {
        CloseConnection(conn->id());
        return;
      }
      epollout_armed_.insert(conn->id());
    } else if (!want_writable && armed) {
      Status st = loop_.Mod(conn->fd(), EPOLLIN, conn->id());
      if (!st.ok()) {
        CloseConnection(conn->id());
        return;
      }
      epollout_armed_.erase(conn->id());
    }
  }

  bool AllQueuesEmptyLocked() REQUIRES(mu_) {
    for (const auto& [id, conn] : connections_) {
      if (!conn->WriteQueueEmpty()) return false;
    }
    return true;
  }

  // ----------------------------------------------------- doc/query cache ---

  /// Loop-thread-only lazy caches: a served document/pattern is loaded or
  /// compiled once and reused for every later request.
  Result<DocumentPtr> LookupDocument(const std::string& name) {
    auto it = documents_.find(name);
    if (it != documents_.end()) return it->second;
    // Re-joined through the shared escape-safe join even though the ref was
    // validated at request admission — the path policy has one owner.
    std::optional<std::string> path =
        util::SafeJoin(opts_.document_root, name, kMaxDocumentNameBytes);
    if (!path) return Status::InvalidArgument("invalid document name");
    Result<DocumentPtr> doc = Document::FromSlpFile(*path + ".slp");
    if (doc.ok()) documents_.emplace(name, doc.value());
    return doc;
  }

  Result<Query> LookupQuery(const std::string& pattern) {
    auto it = queries_.find(pattern);
    if (it != queries_.end()) return it->second;
    Result<Query> query = Query::Compile(pattern, opts_.alphabet);
    if (query.ok()) queries_.emplace(pattern, query.value());
    return query;
  }

  // ------------------------------------------------------------- stats -----

  static void FoldConnStats(const Connection& c, Server::Stats* s) {
    s->bytes_in += c.bytes_in.load(std::memory_order_relaxed);
    s->bytes_out += c.bytes_out.load(std::memory_order_relaxed);
    s->backpressure_pauses +=
        c.backpressure_pauses.load(std::memory_order_relaxed);
    s->max_write_queue_bytes =
        std::max(s->max_write_queue_bytes,
                 c.max_write_queue_bytes.load(std::memory_order_relaxed));
  }

  StatsFrame BuildStatsFrame() const {
    Server::Stats s = stats();
    StatsFrame f;
    f.active_connections = s.active_connections;
    f.total_accepted = s.total_accepted;
    f.rejected_full = s.rejected_full;
    f.requests = s.requests;
    f.pages_sent = s.pages_sent;
    f.tuples_sent = s.tuples_sent;
    f.bytes_in = s.bytes_in;
    f.bytes_out = s.bytes_out;
    f.backpressure_pauses = s.backpressure_pauses;
    f.bad_frames = s.bad_frames;
    f.cancelled_on_disconnect = s.cancelled_on_disconnect;
    f.max_write_queue_bytes = s.max_write_queue_bytes;
    for (size_t i = 0; i < kNumPriorityClasses; ++i) {
      const Session::Stats::ClassStats& c = s.session.by_class[i];
      f.by_class[i].submitted = c.submitted;
      f.by_class[i].completed = c.completed;
      f.by_class[i].cancelled = c.cancelled;
      f.by_class[i].expired = c.expired;
      f.by_class[i].queue_p50_us = c.queue_latency_p50_micros;
      f.by_class[i].queue_p99_us = c.queue_latency_p99_micros;
    }
    return f;
  }

  // ------------------------------------------------------------ members ----

  ServerOptions opts_;
  EventLoop loop_;
  OwnedFd listener_;
  uint16_t port_ = 0;
  bool started_ = false;
  bool stopped_ = false;
  std::unique_ptr<Session> session_;
  std::thread loop_thread_;

  std::atomic<bool> stop_{false};
  std::atomic<bool> close_stragglers_{false};

  mutable util::Mutex mu_;
  std::unordered_map<uint64_t, std::shared_ptr<Connection>> connections_
      GUARDED_BY(mu_);
  std::vector<uint64_t> flush_pending_ GUARDED_BY(mu_);
  bool draining_ GUARDED_BY(mu_) = false;
  uint64_t inflight_total_ GUARDED_BY(mu_) = 0;
  Server::Stats retired_ GUARDED_BY(mu_);
  util::CondVar drained_cv_;

  // Loop-thread-only state (no lock): epoll arming, lazy caches, conn ids.
  std::unordered_set<uint64_t> epollout_armed_;
  std::unordered_map<std::string, DocumentPtr> documents_;
  std::unordered_map<std::string, Query> queries_;
  uint64_t next_conn_id_ = 1;

  std::atomic<uint64_t> total_accepted_{0};
  std::atomic<uint64_t> rejected_full_{0};
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> bad_frames_{0};
  std::atomic<uint64_t> cancelled_on_disconnect_{0};
  std::atomic<uint64_t> pages_sent_{0};
  std::atomic<uint64_t> tuples_sent_{0};
};

}  // namespace net

Server::Server() : Server(ServerOptions{}) {}
Server::Server(ServerOptions opts)
    : impl_(std::make_unique<net::ServerImpl>(std::move(opts))) {}
Server::~Server() { impl_->Stop(); }

Status Server::Start() { return impl_->Start(); }
uint16_t Server::port() const { return impl_->port(); }
bool Server::Drain() { return impl_->Drain(); }
void Server::Stop() { impl_->Stop(); }
Server::Stats Server::stats() const { return impl_->stats(); }

}  // namespace slpspan
