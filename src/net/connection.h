// Per-client connection state: inbound frame reassembly, the bounded
// outbound write queue that implements connection-level backpressure, and
// the in-flight request table.
//
// Threading model. Three kinds of threads touch a Connection:
//   * the server's event-loop thread (reads, flushes, closes),
//   * Session worker threads delivering pages (EnqueuePage) and terminal
//     results (CompleteRequest),
//   * the drain/stop path (MarkClosed).
// Everything mutable is guarded by `mu`. The backpressure contract is the
// one piece of blocking: EnqueuePage BLOCKS the calling worker while the
// write queue is over budget — which, through SubmitOptions::on_page, is
// exactly what pauses the underlying ResultStream at its next checkpoint.
// The event-loop thread never blocks on the queue: FlushWrites sends with
// MSG_DONTWAIT and notifies `writable_cv` as the queue drains, waking any
// paused worker. Server-side memory per connection is therefore bounded by
// write_budget + one frame, no matter how slow the client reads.
//
// Lock order: Connection::mu is a leaf — no other lock is ever taken while
// holding it. In particular, Ticket::Cancel (which can re-enter
// CompleteRequest through the completion callback) is always called with
// `mu` released, on tickets moved out of the table under the lock.

#ifndef SLPSPAN_NET_CONNECTION_H_
#define SLPSPAN_NET_CONNECTION_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/socket.h"
#include "slpspan/runtime.h"
#include "util/mutex.h"

namespace slpspan {
namespace net {

class Connection {
 public:
  Connection(OwnedFd fd, uint64_t id, size_t write_budget)
      : fd_(std::move(fd)), id_(id), write_budget_(write_budget) {}

  int fd() const { return fd_.get(); }
  uint64_t id() const { return id_; }

  /// Inbound reassembly buffer — only the event-loop thread touches it, so
  /// it needs no lock.
  std::string& read_buffer() { return read_buffer_; }

  // ------------------------------------------------------- write path ------

  /// Queues one encoded page frame, BLOCKING while the queue is over
  /// budget (this is the stream pause). A frame larger than the whole
  /// budget is admitted once the queue is empty, so oversized pages make
  /// progress instead of deadlocking. Returns false when the connection
  /// closed while waiting — the caller (the on_page sink) then returns
  /// false to stop the ResultStream. Must NOT be called from the event-loop
  /// thread.
  bool EnqueuePage(std::string frame) EXCLUDES(mu_);

  /// Queues a small control frame (kDone / kError / kStats / kHello)
  /// without blocking — control frames are bounded and must not deadlock
  /// the completion path. Returns false when the connection is closed (the
  /// frame is dropped; the peer is gone).
  bool EnqueueControl(std::string frame) EXCLUDES(mu_);

  /// Sends as much queued data as the socket accepts (MSG_DONTWAIT), from
  /// the event-loop thread. Notifies writers when the queue drains below
  /// half budget. Returns false on a dead socket (caller tears the
  /// connection down); *want_writable is set when residual data needs an
  /// EPOLLOUT wakeup.
  bool FlushWrites(bool* want_writable) EXCLUDES(mu_);

  /// True when nothing is queued (drain uses this to know the last reply
  /// actually left the process).
  bool WriteQueueEmpty() EXCLUDES(mu_);

  // --------------------------------------------------- request table ------

  /// Records an in-flight ticket under the client's request id — unless the
  /// request already completed (callbacks can fire before Submit returns),
  /// in which case the ticket is dropped and false is returned.
  bool RegisterTicket(uint64_t request_id, Ticket ticket) EXCLUDES(mu_);

  /// True if `request_id` is currently in flight or completed early —
  /// i.e. the id is not free for a new request.
  bool IdInUse(uint64_t request_id) EXCLUDES(mu_);

  /// Terminal delivery for one request: removes it from the in-flight
  /// table (or records an early completion) and queues `done_frame`.
  void CompleteRequest(uint64_t request_id, std::string done_frame)
      EXCLUDES(mu_);

  /// Withdraws one request: moves its ticket out of the table (cancel
  /// happens at the call site, outside the lock). Invalid ticket when the
  /// id is unknown.
  Ticket TakeTicket(uint64_t request_id) EXCLUDES(mu_);

  /// Closes the connection for writers: wakes every worker blocked in
  /// EnqueuePage (their streams stop at the next page) and moves all
  /// in-flight tickets out for the caller to Cancel outside the lock.
  std::vector<Ticket> MarkClosed() EXCLUDES(mu_);

  bool closed() EXCLUDES(mu_);
  size_t InflightCount() EXCLUDES(mu_);

  // ------------------------------------------------------------ stats ------

  std::atomic<uint64_t> bytes_in{0};
  std::atomic<uint64_t> bytes_out{0};
  std::atomic<uint64_t> pages_sent{0};
  std::atomic<uint64_t> tuples_sent{0};
  std::atomic<uint64_t> backpressure_pauses{0};
  std::atomic<uint64_t> max_write_queue_bytes{0};

 private:
  void NoteQueueDepthLocked() REQUIRES(mu_);

  const OwnedFd fd_;
  const uint64_t id_;
  const size_t write_budget_;

  std::string read_buffer_;  // event-loop thread only

  util::Mutex mu_;
  util::CondVar writable_cv_;
  std::deque<std::string> write_queue_ GUARDED_BY(mu_);
  size_t write_queue_bytes_ GUARDED_BY(mu_) = 0;
  size_t write_offset_ GUARDED_BY(mu_) = 0;  // sent bytes of queue front
  bool closed_ GUARDED_BY(mu_) = false;
  std::unordered_map<uint64_t, Ticket> inflight_ GUARDED_BY(mu_);
  /// Request ids whose completion callback ran before RegisterTicket — the
  /// register/complete race of Session callbacks firing on the submitting
  /// thread's timeline.
  std::unordered_set<uint64_t> done_early_ GUARDED_BY(mu_);
};

}  // namespace net
}  // namespace slpspan

#endif  // SLPSPAN_NET_CONNECTION_H_
