// Open-loop epoll load driver — see load_driver.h.

#include "net/load_driver.h"

#include <errno.h>
#include <cstring>
#include <sys/epoll.h>
#include <sys/socket.h>

#include <algorithm>
#include <unordered_map>

#include "net/event_loop.h"
#include "net/socket.h"

namespace slpspan {
namespace net {
namespace {

using Clock = std::chrono::steady_clock;

struct ConnState {
  OwnedFd fd;
  bool connected = false;
  bool dead = false;
  bool write_armed = false;
  std::string inbox;
  std::string outbox;
  size_t out_off = 0;
};

struct PendingRequest {
  uint8_t priority = 0;
  Clock::time_point sent_at;
};

struct Driver {
  std::vector<ConnState> conns;
  // Request ids are globally unique across the run, so one map demuxes all
  // kDone frames regardless of connection.
  std::unordered_map<uint64_t, PendingRequest> pending;
  EventLoop loop;
  LoadReport report;
  uint64_t open_now = 0;

  void NoteOpen() {
    ++open_now;
    ++report.connections_opened;
    report.peak_open = std::max(report.peak_open, open_now);
  }

  void KillConn(uint32_t idx) {
    ConnState& c = conns[idx];
    if (c.dead) return;
    if (c.fd.valid()) (void)loop.Del(c.fd.get());
    if (c.connected) --open_now;
    c.dead = true;
    c.fd.Reset();
    ++report.wire_errors;
  }

  /// Sends as much of the outbox as the socket takes; arms EPOLLOUT for
  /// the rest.
  void FlushOut(uint32_t idx) {
    ConnState& c = conns[idx];
    if (c.dead || !c.connected) return;
    while (c.out_off < c.outbox.size()) {
      ssize_t n = ::send(c.fd.get(), c.outbox.data() + c.out_off,
                         c.outbox.size() - c.out_off,
                         MSG_DONTWAIT | MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        KillConn(idx);
        return;
      }
      c.out_off += static_cast<size_t>(n);
    }
    if (c.out_off == c.outbox.size()) {
      c.outbox.clear();
      c.out_off = 0;
    }
    const bool want = !c.outbox.empty();
    if (want != c.write_armed) {
      Status st = loop.Mod(c.fd.get(), want ? (EPOLLIN | EPOLLOUT) : EPOLLIN,
                           idx);
      if (!st.ok()) {
        KillConn(idx);
        return;
      }
      c.write_armed = want;
    }
  }

  /// Drains readable bytes and processes complete frames.
  void HandleRead(uint32_t idx) {
    ConnState& c = conns[idx];
    if (c.dead || !c.connected) return;
    char buf[16384];
    for (;;) {
      bool would_block = false;
      Result<size_t> n = RecvSome(c.fd.get(), buf, sizeof(buf), &would_block);
      if (!n.ok()) {
        KillConn(idx);
        return;
      }
      if (would_block) break;
      if (n.value() == 0) {
        KillConn(idx);
        return;
      }
      c.inbox.append(buf, n.value());
    }
    size_t off = 0;
    while (c.inbox.size() - off >= kFrameHeaderBytes) {
      FrameHeader h =
          DecodeHeader(reinterpret_cast<const uint8_t*>(c.inbox.data() + off));
      if (h.payload_size > kMaxOutboundPayload) {
        KillConn(idx);
        return;
      }
      if (c.inbox.size() - off < kFrameHeaderBytes + h.payload_size) break;
      const uint8_t* payload = reinterpret_cast<const uint8_t*>(
          c.inbox.data() + off + kFrameHeaderBytes);
      HandleFrame(h.type, payload, h.payload_size, idx);
      if (c.dead) return;
      off += kFrameHeaderBytes + h.payload_size;
    }
    c.inbox.erase(0, off);
  }

  void HandleFrame(uint8_t type, const uint8_t* payload, size_t size,
                   uint32_t idx) {
    switch (static_cast<FrameType>(type)) {
      case FrameType::kHello:
        return;  // handshake banner; nothing to record
      case FrameType::kPage: {
        Result<PageFrame> page = DecodePage(payload, size);
        if (!page.ok()) {
          KillConn(idx);
          return;
        }
        ++report.pages;
        report.tuples += page.value().tuples.size();
        return;
      }
      case FrameType::kDone: {
        Result<DoneFrame> done = DecodeDone(payload, size);
        if (!done.ok()) {
          KillConn(idx);
          return;
        }
        auto it = pending.find(done.value().id);
        if (it == pending.end()) return;
        ++report.completed;
        if (done.value().code != 0) ++report.failed_requests;
        const uint64_t us =
            static_cast<uint64_t>(std::chrono::duration_cast<
                                      std::chrono::microseconds>(
                                      Clock::now() - it->second.sent_at)
                                      .count());
        report.latency_us[std::min<size_t>(it->second.priority,
                                           kNumPriorityClasses - 1)]
            .push_back(us);
        pending.erase(it);
        return;
      }
      default:
        KillConn(idx);  // kError or garbage: this connection is done
        return;
    }
  }
};

}  // namespace

Result<LoadReport> RunOpenLoop(const std::string& host, uint16_t port,
                               uint32_t num_connections,
                               std::span<const LoadSpec> schedule,
                               std::chrono::milliseconds timeout) {
  Driver d;
  Status st = d.loop.Init();
  if (!st.ok()) return st;
  d.conns.resize(num_connections);
  for (uint32_t i = 0; i < num_connections; ++i) {
    Result<OwnedFd> fd = StartConnectTcp(host, port);
    if (!fd.ok()) {
      d.conns[i].dead = true;
      ++d.report.wire_errors;
      continue;
    }
    d.conns[i].fd = std::move(fd).value();
    // EPOLLOUT signals the handshake completing; EPOLLIN the hello frame.
    st = d.loop.Add(d.conns[i].fd.get(), EPOLLIN | EPOLLOUT, i);
    if (!st.ok()) return st;
    d.conns[i].write_armed = true;
  }

  const Clock::time_point start = Clock::now();
  const Clock::time_point deadline = start + timeout;
  size_t next_spec = 0;
  uint64_t next_request_id = 1;
  std::vector<EventLoop::Event> events;

  for (;;) {
    const Clock::time_point now = Clock::now();
    // Fire every request whose scheduled time has arrived — regardless of
    // outstanding work (open loop).
    while (next_spec < schedule.size()) {
      const LoadSpec& spec = schedule[next_spec];
      if (start + std::chrono::microseconds(spec.send_at_us) > now) break;
      ++next_spec;
      if (spec.conn >= num_connections || d.conns[spec.conn].dead) {
        ++d.report.wire_errors;
        continue;
      }
      RequestFrame req;
      req.id = next_request_id++;
      req.op = spec.op;
      req.priority = spec.priority;
      req.limit = spec.limit;
      req.document = spec.document;
      req.pattern = spec.pattern;
      AppendRequest(req, &d.conns[spec.conn].outbox);
      d.pending.emplace(req.id,
                        PendingRequest{spec.priority, Clock::now()});
      d.FlushOut(spec.conn);
    }

    const bool work_left = next_spec < schedule.size() || !d.pending.empty();
    if (!work_left || now >= deadline) break;

    // Sleep until the next scheduled send (or 50ms) so firing stays timely.
    int wait_ms = 50;
    if (next_spec < schedule.size()) {
      const auto until = start +
                         std::chrono::microseconds(
                             schedule[next_spec].send_at_us) -
                         now;
      const auto ms =
          std::chrono::duration_cast<std::chrono::milliseconds>(until).count();
      wait_ms = static_cast<int>(std::clamp<long long>(ms, 0, 50));
    }
    st = d.loop.Wait(wait_ms, &events);
    if (!st.ok()) return st;
    for (const EventLoop::Event& ev : events) {
      if (ev.tag == kWakeTag) continue;
      const uint32_t idx = static_cast<uint32_t>(ev.tag);
      ConnState& c = d.conns[idx];
      if (c.dead) continue;
      if ((ev.events & (EPOLLHUP | EPOLLERR)) != 0 && !c.connected) {
        d.KillConn(idx);
        continue;
      }
      if (!c.connected && (ev.events & EPOLLOUT) != 0) {
        Status ok = ConnectFinished(c.fd.get());
        if (!ok.ok()) {
          d.KillConn(idx);
          continue;
        }
        c.connected = true;
        d.NoteOpen();
        c.write_armed = false;
        Status mod = d.loop.Mod(c.fd.get(), EPOLLIN, idx);
        if (!mod.ok()) {
          d.KillConn(idx);
          continue;
        }
        d.FlushOut(idx);  // anything queued while the handshake ran
        continue;
      }
      if ((ev.events & (EPOLLHUP | EPOLLERR)) != 0) {
        d.KillConn(idx);
        continue;
      }
      if ((ev.events & EPOLLIN) != 0) d.HandleRead(idx);
      if (!c.dead && (ev.events & EPOLLOUT) != 0) d.FlushOut(idx);
    }
  }
  return std::move(d.report);
}

}  // namespace net
}  // namespace slpspan
