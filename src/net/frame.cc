// Frame codec implementation — see frame.h and docs/WIRE_PROTOCOL.md.

#include "net/frame.h"

#include <limits>

#include "storage/bundle_format.h"

namespace slpspan {
namespace net {
namespace {

using storage::BundleReader;
using storage::BundleWriter;

/// Seals `payload` into a complete frame appended to *out.
void AppendFrame(FrameType type, const std::string& payload,
                 std::string* out) {
  BundleWriter header;
  header.U32(static_cast<uint32_t>(payload.size()));
  header.U8(static_cast<uint8_t>(type));
  out->append(header.buffer());
  out->append(payload);
}

Status ReadString(BundleReader& r, size_t max_bytes, const char* what,
                  std::string* out) {
  uint64_t len = 0;
  Status st = r.Varint(&len);
  if (!st.ok()) return st;
  if (len > max_bytes) {
    return Status::InvalidArgument(std::string(what) + " too long");
  }
  if (len > r.remaining()) return Status::Corruption("truncated frame");
  out->resize(static_cast<size_t>(len));
  return r.Bytes(out->data(), out->size());
}

/// Fails decoding when payload bytes remain after the last field — trailing
/// garbage means the sender and receiver disagree about the format.
Status ExpectEnd(const BundleReader& r) {
  if (!r.AtEnd()) return Status::Corruption("trailing bytes in frame");
  return Status::OK();
}

}  // namespace

void AppendHello(std::string* out) {
  BundleWriter w;
  w.U32(kProtocolMagic);
  w.U16(kProtocolVersion);
  AppendFrame(FrameType::kHello, w.buffer(), out);
}

void AppendRequest(const RequestFrame& request, std::string* out) {
  BundleWriter w;
  w.U64(request.id);
  w.U8(static_cast<uint8_t>(request.op));
  w.U8(request.priority);
  w.U32(request.deadline_ms);
  w.U64(request.limit);
  w.Varint(request.document.size());
  w.Bytes(request.document.data(), request.document.size());
  w.Varint(request.pattern.size());
  w.Bytes(request.pattern.data(), request.pattern.size());
  AppendFrame(FrameType::kRequest, w.buffer(), out);
}

void AppendCancel(uint64_t id, std::string* out) {
  BundleWriter w;
  w.U64(id);
  AppendFrame(FrameType::kCancel, w.buffer(), out);
}

void AppendPage(uint64_t id, std::span<const SpanTuple> tuples,
                std::string* out) {
  BundleWriter w;
  w.U64(id);
  w.U32(static_cast<uint32_t>(tuples.size()));
  for (const SpanTuple& t : tuples) {
    w.U16(static_cast<uint16_t>(t.num_vars()));
    for (VarId v = 0; v < t.num_vars(); ++v) {
      const std::optional<Span>& s = t.Get(v);
      w.U8(s.has_value() ? 1 : 0);
      if (s.has_value()) {
        w.Varint(s->begin);
        w.Varint(s->end);
      }
    }
  }
  AppendFrame(FrameType::kPage, w.buffer(), out);
}

void AppendDone(const DoneFrame& done, std::string* out) {
  BundleWriter w;
  w.U64(done.id);
  w.U8(done.code);
  w.U8(done.nonempty ? 1 : 0);
  w.U64(done.count_value);
  w.U8(done.count_exact ? 1 : 0);
  w.U64(done.tuples_streamed);
  size_t n = std::min(done.message.size(), kMaxMessageBytes);
  w.Varint(n);
  w.Bytes(done.message.data(), n);
  AppendFrame(FrameType::kDone, w.buffer(), out);
}

void AppendStatsRequest(std::string* out) {
  AppendFrame(FrameType::kStatsRequest, std::string(), out);
}

void AppendStats(const StatsFrame& stats, std::string* out) {
  BundleWriter w;
  w.U64(stats.active_connections);
  w.U64(stats.total_accepted);
  w.U64(stats.rejected_full);
  w.U64(stats.requests);
  w.U64(stats.pages_sent);
  w.U64(stats.tuples_sent);
  w.U64(stats.bytes_in);
  w.U64(stats.bytes_out);
  w.U64(stats.backpressure_pauses);
  w.U64(stats.bad_frames);
  w.U64(stats.cancelled_on_disconnect);
  w.U64(stats.max_write_queue_bytes);
  w.U8(static_cast<uint8_t>(stats.by_class.size()));
  for (const StatsFrame::ClassStats& c : stats.by_class) {
    w.U64(c.submitted);
    w.U64(c.completed);
    w.U64(c.cancelled);
    w.U64(c.expired);
    w.U64(c.queue_p50_us);
    w.U64(c.queue_p99_us);
  }
  AppendFrame(FrameType::kStats, w.buffer(), out);
}

void AppendError(const std::string& message, std::string* out) {
  BundleWriter w;
  size_t n = std::min(message.size(), kMaxMessageBytes);
  w.Varint(n);
  w.Bytes(message.data(), n);
  AppendFrame(FrameType::kError, w.buffer(), out);
}

DoneFrame MakeDone(uint64_t id, const Result<EngineOutput>& result) {
  DoneFrame d;
  d.id = id;
  if (result.ok()) {
    const EngineOutput& out = result.value();
    d.code = 0;
    d.nonempty = out.nonempty;
    d.count_value = out.count.value;
    d.count_exact = out.count.exact;
    d.tuples_streamed = out.tuples_streamed;
  } else {
    d.code = static_cast<uint8_t>(result.status().code());
    d.message = result.status().message();
  }
  return d;
}

FrameHeader DecodeHeader(const uint8_t* data) {
  FrameHeader h;
  h.payload_size = static_cast<uint32_t>(data[0]) |
                   static_cast<uint32_t>(data[1]) << 8 |
                   static_cast<uint32_t>(data[2]) << 16 |
                   static_cast<uint32_t>(data[3]) << 24;
  h.type = data[4];
  return h;
}

Result<HelloFrame> DecodeHello(const uint8_t* payload, size_t size) {
  BundleReader r(payload, size);
  HelloFrame h;
  Status st = r.U32(&h.magic);
  if (st.ok()) st = r.U16(&h.version);
  if (st.ok()) st = ExpectEnd(r);
  if (!st.ok()) return st;
  if (h.magic != kProtocolMagic) {
    return Status::InvalidArgument("bad protocol magic");
  }
  if (h.version != kProtocolVersion) {
    return Status::NotSupported("unsupported protocol version");
  }
  return h;
}

Result<RequestFrame> DecodeRequest(const uint8_t* payload, size_t size) {
  BundleReader r(payload, size);
  RequestFrame req;
  uint8_t op = 0;
  Status st = r.U64(&req.id);
  if (st.ok()) st = r.U8(&op);
  if (st.ok()) st = r.U8(&req.priority);
  if (st.ok()) st = r.U32(&req.deadline_ms);
  if (st.ok()) st = r.U64(&req.limit);
  if (st.ok()) {
    st = ReadString(r, kMaxDocumentNameBytes, "document name", &req.document);
  }
  if (st.ok()) st = ReadString(r, kMaxPatternBytes, "pattern", &req.pattern);
  if (st.ok()) st = ExpectEnd(r);
  if (!st.ok()) return st;
  if (op > static_cast<uint8_t>(WireOp::kExtract)) {
    return Status::InvalidArgument("unknown wire op");
  }
  req.op = static_cast<WireOp>(op);
  return req;
}

Result<uint64_t> DecodeCancel(const uint8_t* payload, size_t size) {
  BundleReader r(payload, size);
  uint64_t id = 0;
  Status st = r.U64(&id);
  if (st.ok()) st = ExpectEnd(r);
  if (!st.ok()) return st;
  return id;
}

Result<PageFrame> DecodePage(const uint8_t* payload, size_t size) {
  BundleReader r(payload, size);
  PageFrame page;
  uint32_t n = 0;
  Status st = r.U64(&page.id);
  if (st.ok()) st = r.U32(&n);
  if (!st.ok()) return st;
  // Each tuple is at least 2 bytes (its var count), so a count that cannot
  // fit in the remaining payload is corruption — checked before reserving.
  if (static_cast<uint64_t>(n) * 2 > r.remaining()) {
    return Status::Corruption("page tuple count exceeds payload");
  }
  page.tuples.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    uint16_t num_vars = 0;
    st = r.U16(&num_vars);
    if (!st.ok()) return st;
    if (num_vars > kMaxTupleVars) {
      return Status::Corruption("tuple variable count too large");
    }
    SpanTuple t(num_vars);
    for (VarId v = 0; v < num_vars; ++v) {
      uint8_t present = 0;
      st = r.U8(&present);
      if (!st.ok()) return st;
      if (present > 1) return Status::Corruption("bad span presence byte");
      if (present) {
        Span s;
        st = r.Varint(&s.begin);
        if (st.ok()) st = r.Varint(&s.end);
        if (!st.ok()) return st;
        if (s.begin < 1 || s.begin > s.end) {
          return Status::Corruption("invalid span bounds");
        }
        t.Set(v, s);
      }
    }
    page.tuples.push_back(std::move(t));
  }
  st = ExpectEnd(r);
  if (!st.ok()) return st;
  return page;
}

Result<DoneFrame> DecodeDone(const uint8_t* payload, size_t size) {
  BundleReader r(payload, size);
  DoneFrame d;
  uint8_t nonempty = 0;
  uint8_t exact = 0;
  Status st = r.U64(&d.id);
  if (st.ok()) st = r.U8(&d.code);
  if (st.ok()) st = r.U8(&nonempty);
  if (st.ok()) st = r.U64(&d.count_value);
  if (st.ok()) st = r.U8(&exact);
  if (st.ok()) st = r.U64(&d.tuples_streamed);
  if (st.ok()) st = ReadString(r, kMaxMessageBytes, "message", &d.message);
  if (st.ok()) st = ExpectEnd(r);
  if (!st.ok()) return st;
  d.nonempty = nonempty != 0;
  d.count_exact = exact != 0;
  return d;
}

Result<StatsFrame> DecodeStats(const uint8_t* payload, size_t size) {
  BundleReader r(payload, size);
  StatsFrame s;
  uint8_t classes = 0;
  Status st = r.U64(&s.active_connections);
  if (st.ok()) st = r.U64(&s.total_accepted);
  if (st.ok()) st = r.U64(&s.rejected_full);
  if (st.ok()) st = r.U64(&s.requests);
  if (st.ok()) st = r.U64(&s.pages_sent);
  if (st.ok()) st = r.U64(&s.tuples_sent);
  if (st.ok()) st = r.U64(&s.bytes_in);
  if (st.ok()) st = r.U64(&s.bytes_out);
  if (st.ok()) st = r.U64(&s.backpressure_pauses);
  if (st.ok()) st = r.U64(&s.bad_frames);
  if (st.ok()) st = r.U64(&s.cancelled_on_disconnect);
  if (st.ok()) st = r.U64(&s.max_write_queue_bytes);
  if (st.ok()) st = r.U8(&classes);
  if (!st.ok()) return st;
  if (classes != s.by_class.size()) {
    return Status::NotSupported("priority class count mismatch");
  }
  for (StatsFrame::ClassStats& c : s.by_class) {
    st = r.U64(&c.submitted);
    if (st.ok()) st = r.U64(&c.completed);
    if (st.ok()) st = r.U64(&c.cancelled);
    if (st.ok()) st = r.U64(&c.expired);
    if (st.ok()) st = r.U64(&c.queue_p50_us);
    if (st.ok()) st = r.U64(&c.queue_p99_us);
    if (!st.ok()) return st;
  }
  st = ExpectEnd(r);
  if (!st.ok()) return st;
  return s;
}

Result<std::string> DecodeError(const uint8_t* payload, size_t size) {
  BundleReader r(payload, size);
  std::string message;
  Status st = ReadString(r, kMaxMessageBytes, "message", &message);
  if (st.ok()) st = ExpectEnd(r);
  if (!st.ok()) return st;
  return message;
}

}  // namespace net
}  // namespace slpspan
