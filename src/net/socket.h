// Thin RAII + error-translating wrappers over the POSIX socket syscalls.
//
// This header is the only place outside the event loop where raw socket
// syscalls are allowed (repo_lint rule raw-socket-outside-net confines
// <sys/socket.h> and friends to src/net/). All wrappers translate errno into
// Status instead of exceptions, use MSG_NOSIGNAL so a peer reset never raises
// SIGPIPE, and own their file descriptors through OwnedFd so every early
// return closes cleanly.

#ifndef SLPSPAN_NET_SOCKET_H_
#define SLPSPAN_NET_SOCKET_H_

#include <cstdint>
#include <string>
#include <utility>

#include "util/status.h"

namespace slpspan {
namespace net {

/// Move-only owner of one file descriptor; closes on destruction.
class OwnedFd {
 public:
  OwnedFd() = default;
  explicit OwnedFd(int fd) : fd_(fd) {}
  OwnedFd(OwnedFd&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  OwnedFd& operator=(OwnedFd&& o) noexcept {
    if (this != &o) {
      Reset();
      fd_ = o.fd_;
      o.fd_ = -1;
    }
    return *this;
  }
  OwnedFd(const OwnedFd&) = delete;
  OwnedFd& operator=(const OwnedFd&) = delete;
  ~OwnedFd() { Reset(); }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int Release() { return std::exchange(fd_, -1); }
  void Reset();

 private:
  int fd_ = -1;
};

/// Creates a listening TCP socket bound to `address:port` (IPv4 dotted quad
/// or "localhost"; port 0 picks an ephemeral port — read it back with
/// LocalPort). SO_REUSEADDR is set; the socket is non-blocking.
Result<OwnedFd> ListenTcp(const std::string& address, uint16_t port,
                          int backlog);

/// The port a bound socket actually listens on (resolves port 0).
Result<uint16_t> LocalPort(int fd);

/// Blocking TCP connect (client side). The returned socket is blocking and
/// has TCP_NODELAY set — the client exchanges small frames interactively.
Result<OwnedFd> ConnectTcp(const std::string& address, uint16_t port);

/// Non-blocking connect for the load driver: returns immediately with the
/// socket mid-handshake (watch for EPOLLOUT, then check ConnectFinished).
Result<OwnedFd> StartConnectTcp(const std::string& address, uint16_t port);

/// Resolves a non-blocking connect: OK once the handshake completed, an
/// error Status if it failed (SO_ERROR).
Status ConnectFinished(int fd);

/// One accept on a non-blocking listener. The accepted socket is
/// non-blocking with TCP_NODELAY. *would_block (no pending connection)
/// yields an invalid OwnedFd with ok() status.
Result<OwnedFd> AcceptConnection(int listen_fd, bool* would_block);

Status SetNonBlocking(int fd);

/// Writes all of [data, data+size) to a *blocking* socket, retrying short
/// writes and EINTR. MSG_NOSIGNAL — a dead peer returns a Status.
Status SendAll(int fd, const void* data, size_t size);

/// One recv into [buf, buf+cap): >0 bytes read, 0 on orderly shutdown,
/// Status on error (EAGAIN on a non-blocking socket is surfaced as 0 bytes
/// with ok() status and *would_block set).
Result<size_t> RecvSome(int fd, void* buf, size_t cap, bool* would_block);

}  // namespace net
}  // namespace slpspan

#endif  // SLPSPAN_NET_SOCKET_H_
