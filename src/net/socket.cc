// POSIX socket wrappers — see socket.h.

#include "net/socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <cstring>
#include <sys/socket.h>
#include <unistd.h>

namespace slpspan {
namespace net {
namespace {

Status Errno(const char* what) {
  return Status::InvalidArgument(std::string(what) + ": " +
                                 std::strerror(errno));
}

/// Parses an IPv4 listen/connect address; "localhost" maps to 127.0.0.1.
Status ParseAddress(const std::string& address, uint16_t port,
                    sockaddr_in* out) {
  std::memset(out, 0, sizeof(*out));
  out->sin_family = AF_INET;
  out->sin_port = htons(port);
  const std::string& host = address == "localhost" ? "127.0.0.1" : address;
  if (inet_pton(AF_INET, host.c_str(), &out->sin_addr) != 1) {
    return Status::InvalidArgument("unparseable IPv4 address: " + address);
  }
  return Status::OK();
}

Result<OwnedFd> NewTcpSocket() {
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Errno("socket");
  return OwnedFd(fd);
}

}  // namespace

void OwnedFd::Reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<OwnedFd> ListenTcp(const std::string& address, uint16_t port,
                          int backlog) {
  sockaddr_in addr;
  Status st = ParseAddress(address, port, &addr);
  if (!st.ok()) return st;
  Result<OwnedFd> sock = NewTcpSocket();
  if (!sock.ok()) return sock;
  OwnedFd fd = std::move(sock).value();
  int one = 1;
  if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) <
      0) {
    return Errno("setsockopt(SO_REUSEADDR)");
  }
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) < 0) {
    return Errno("bind");
  }
  if (::listen(fd.get(), backlog) < 0) return Errno("listen");
  st = SetNonBlocking(fd.get());
  if (!st.ok()) return st;
  return fd;
}

Result<uint16_t> LocalPort(int fd) {
  sockaddr_in addr;
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    return Errno("getsockname");
  }
  return static_cast<uint16_t>(ntohs(addr.sin_port));
}

Result<OwnedFd> ConnectTcp(const std::string& address, uint16_t port) {
  sockaddr_in addr;
  Status st = ParseAddress(address, port, &addr);
  if (!st.ok()) return st;
  Result<OwnedFd> sock = NewTcpSocket();
  if (!sock.ok()) return sock;
  OwnedFd fd = std::move(sock).value();
  int rc;
  do {
    rc = ::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) return Errno("connect");
  int one = 1;
  // Best effort: latency tuning, not correctness.
  (void)::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

Result<OwnedFd> StartConnectTcp(const std::string& address, uint16_t port) {
  sockaddr_in addr;
  Status st = ParseAddress(address, port, &addr);
  if (!st.ok()) return st;
  Result<OwnedFd> sock = NewTcpSocket();
  if (!sock.ok()) return sock;
  OwnedFd fd = std::move(sock).value();
  st = SetNonBlocking(fd.get());
  if (!st.ok()) return st;
  int rc = ::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                     sizeof(addr));
  if (rc < 0 && errno != EINPROGRESS) return Errno("connect");
  return fd;
}

Status ConnectFinished(int fd) {
  int err = 0;
  socklen_t len = sizeof(err);
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0) {
    return Errno("getsockopt(SO_ERROR)");
  }
  if (err != 0) {
    return Status::InvalidArgument(std::string("connect: ") +
                                   std::strerror(err));
  }
  return Status::OK();
}

Result<OwnedFd> AcceptConnection(int listen_fd, bool* would_block) {
  *would_block = false;
  for (;;) {
    int fd = ::accept4(listen_fd, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd >= 0) {
      int one = 1;
      (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return OwnedFd(fd);
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      *would_block = true;
      return OwnedFd();
    }
    return Errno("accept4");
  }
}

Status SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return Errno("fcntl(F_GETFL)");
  if (::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl(F_SETFL)");
  }
  return Status::OK();
}

Status SendAll(int fd, const void* data, size_t size) {
  const char* p = static_cast<const char*>(data);
  while (size > 0) {
    ssize_t n = ::send(fd, p, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    p += n;
    size -= static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<size_t> RecvSome(int fd, void* buf, size_t cap, bool* would_block) {
  *would_block = false;
  for (;;) {
    ssize_t n = ::recv(fd, buf, cap, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        *would_block = true;
        return size_t{0};
      }
      return Errno("recv");
    }
    return static_cast<size_t>(n);
  }
}

}  // namespace net
}  // namespace slpspan
