// Epoll wrapper — see event_loop.h.

#include "net/event_loop.h"

#include <errno.h>
#include <cstring>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

namespace slpspan {
namespace net {
namespace {

Status Errno(const char* what) {
  return Status::InvalidArgument(std::string(what) + ": " +
                                 std::strerror(errno));
}

}  // namespace

Status EventLoop::Init() {
  int ep = ::epoll_create1(EPOLL_CLOEXEC);
  if (ep < 0) return Errno("epoll_create1");
  epoll_fd_ = OwnedFd(ep);
  int ev = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (ev < 0) return Errno("eventfd");
  wake_fd_ = OwnedFd(ev);
  return Add(wake_fd_.get(), EPOLLIN, kWakeTag);
}

Status EventLoop::Add(int fd, uint32_t events, uint64_t tag) {
  epoll_event ev{};
  ev.events = events;
  ev.data.u64 = tag;
  if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, fd, &ev) < 0) {
    return Errno("epoll_ctl(ADD)");
  }
  return Status::OK();
}

Status EventLoop::Mod(int fd, uint32_t events, uint64_t tag) {
  epoll_event ev{};
  ev.events = events;
  ev.data.u64 = tag;
  if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_MOD, fd, &ev) < 0) {
    return Errno("epoll_ctl(MOD)");
  }
  return Status::OK();
}

Status EventLoop::Del(int fd) {
  if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_DEL, fd, nullptr) < 0) {
    return Errno("epoll_ctl(DEL)");
  }
  return Status::OK();
}

Status EventLoop::Wait(int timeout_ms, std::vector<Event>* out) {
  out->clear();
  epoll_event events[128];
  int n;
  do {
    n = ::epoll_wait(epoll_fd_.get(), events, 128, timeout_ms);
  } while (n < 0 && errno == EINTR);
  if (n < 0) return Errno("epoll_wait");
  out->reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    if (events[i].data.u64 == kWakeTag) {
      uint64_t drain = 0;
      // Non-blocking eventfd: EAGAIN just means another Wake already drained.
      (void)!::read(wake_fd_.get(), &drain, sizeof(drain));
    }
    out->push_back(Event{events[i].data.u64, events[i].events});
  }
  return Status::OK();
}

void EventLoop::Wake() {
  uint64_t one = 1;
  (void)!::write(wake_fd_.get(), &one, sizeof(one));
}

}  // namespace net
}  // namespace slpspan
