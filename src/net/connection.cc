// Connection write queue, backpressure and request table — see connection.h.

#include "net/connection.h"

#include <errno.h>
#include <cstring>
#include <sys/socket.h>

#include <algorithm>

namespace slpspan {
namespace net {

bool Connection::EnqueuePage(std::string frame) {
  util::MutexLock lock(&mu_);
  // Block while over budget. A frame bigger than the whole budget would
  // never fit, so it is admitted as soon as the queue is empty — the queue
  // then briefly holds one oversized frame, keeping the bound at
  // write_budget_ + max frame size while guaranteeing progress.
  bool paused = false;
  while (!closed_ && write_queue_bytes_ + frame.size() > write_budget_ &&
         write_queue_bytes_ > 0) {
    if (!paused) {
      paused = true;
      backpressure_pauses.fetch_add(1, std::memory_order_relaxed);
    }
    writable_cv_.Wait(mu_);
  }
  if (closed_) return false;
  write_queue_bytes_ += frame.size();
  write_queue_.push_back(std::move(frame));
  NoteQueueDepthLocked();
  return true;
}

bool Connection::EnqueueControl(std::string frame) {
  util::MutexLock lock(&mu_);
  if (closed_) return false;
  write_queue_bytes_ += frame.size();
  write_queue_.push_back(std::move(frame));
  NoteQueueDepthLocked();
  return true;
}

bool Connection::FlushWrites(bool* want_writable) {
  util::MutexLock lock(&mu_);
  *want_writable = false;
  while (!write_queue_.empty()) {
    const std::string& front = write_queue_.front();
    ssize_t n = ::send(fd_.get(), front.data() + write_offset_,
                       front.size() - write_offset_,
                       MSG_DONTWAIT | MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        *want_writable = true;
        break;
      }
      return false;  // peer reset — caller closes the connection
    }
    bytes_out.fetch_add(static_cast<uint64_t>(n), std::memory_order_relaxed);
    write_offset_ += static_cast<size_t>(n);
    if (write_offset_ == front.size()) {
      write_queue_bytes_ -= front.size();
      write_offset_ = 0;
      write_queue_.pop_front();
    }
  }
  // Wake paused page producers once the queue has real headroom (half the
  // budget) — hysteresis so a stalled client does not make workers
  // thrash between one-page sends and pauses.
  if (write_queue_bytes_ <= write_budget_ / 2) writable_cv_.NotifyAll();
  return true;
}

bool Connection::WriteQueueEmpty() {
  util::MutexLock lock(&mu_);
  return write_queue_.empty();
}

bool Connection::RegisterTicket(uint64_t request_id, Ticket ticket) {
  util::MutexLock lock(&mu_);
  if (done_early_.erase(request_id) > 0) return false;  // already completed
  if (closed_) return false;  // drop; MarkClosed already ran
  inflight_.emplace(request_id, std::move(ticket));
  return true;
}

bool Connection::IdInUse(uint64_t request_id) {
  util::MutexLock lock(&mu_);
  return inflight_.count(request_id) > 0 || done_early_.count(request_id) > 0;
}

void Connection::CompleteRequest(uint64_t request_id, std::string done_frame) {
  util::MutexLock lock(&mu_);
  if (inflight_.erase(request_id) == 0) {
    // Completed before RegisterTicket stored the ticket; remember the id so
    // the register drops its (already-dead) ticket.
    done_early_.insert(request_id);
  }
  if (closed_) return;  // peer is gone; nothing to deliver
  write_queue_bytes_ += done_frame.size();
  write_queue_.push_back(std::move(done_frame));
  NoteQueueDepthLocked();
}

Ticket Connection::TakeTicket(uint64_t request_id) {
  util::MutexLock lock(&mu_);
  auto it = inflight_.find(request_id);
  if (it == inflight_.end()) return Ticket();
  Ticket t = std::move(it->second);
  inflight_.erase(it);
  return t;
}

std::vector<Ticket> Connection::MarkClosed() {
  util::MutexLock lock(&mu_);
  closed_ = true;
  writable_cv_.NotifyAll();  // unblock every paused EnqueuePage
  std::vector<Ticket> orphans;
  orphans.reserve(inflight_.size());
  for (auto& [id, ticket] : inflight_) orphans.push_back(std::move(ticket));
  inflight_.clear();
  return orphans;
}

bool Connection::closed() {
  util::MutexLock lock(&mu_);
  return closed_;
}

size_t Connection::InflightCount() {
  util::MutexLock lock(&mu_);
  return inflight_.size();
}

void Connection::NoteQueueDepthLocked() {
  uint64_t depth = write_queue_bytes_;
  uint64_t seen = max_write_queue_bytes.load(std::memory_order_relaxed);
  while (depth > seen && !max_write_queue_bytes.compare_exchange_weak(
                             seen, depth, std::memory_order_relaxed)) {
  }
}

}  // namespace net
}  // namespace slpspan
