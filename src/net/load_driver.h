// Open-loop load driver for the framed-TCP server — the measurement engine
// behind bench E15. One thread multiplexes thousands of non-blocking client
// connections over epoll and fires requests at their *scheduled* times,
// independent of when earlier responses arrive (open-loop: queueing delay
// shows up as measured latency instead of silently throttling the offered
// load, the classic closed-loop coordinated-omission trap).
//
// Latency is measured request-send to kDone-received, over the wire, and
// bucketed by priority class — so a bench can assert that interactive tail
// latency beats batch tail latency end to end, not just inside Session.

#ifndef SLPSPAN_NET_LOAD_DRIVER_H_
#define SLPSPAN_NET_LOAD_DRIVER_H_

#include <array>
#include <chrono>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "net/frame.h"
#include "util/status.h"

namespace slpspan {
namespace net {

/// One scheduled request of the open-loop plan.
struct LoadSpec {
  uint32_t conn = 0;    ///< connection index in [0, num_connections)
  WireOp op = WireOp::kCount;
  uint8_t priority = 1;
  std::string document;
  std::string pattern;
  uint64_t limit = UINT64_MAX;
  uint64_t send_at_us = 0;  ///< offset from the run's start
};

struct LoadReport {
  uint64_t connections_opened = 0;  ///< handshakes completed
  uint64_t peak_open = 0;           ///< max simultaneously open connections
  uint64_t completed = 0;           ///< kDone frames received (any code)
  uint64_t wire_errors = 0;         ///< dead connections / undecodable frames
  uint64_t failed_requests = 0;     ///< kDone frames with a non-OK code
  uint64_t pages = 0;
  uint64_t tuples = 0;
  /// Wire latency samples (micros), request sent -> kDone received, per
  /// priority class.
  std::array<std::vector<uint64_t>, kNumPriorityClasses> latency_us;
};

/// Opens `num_connections` to host:port, plays `schedule` (must be sorted
/// by send_at_us), and collects latencies until every request completed or
/// `timeout` elapsed. Specs naming a connection that failed to open are
/// counted as wire_errors.
Result<LoadReport> RunOpenLoop(const std::string& host, uint16_t port,
                               uint32_t num_connections,
                               std::span<const LoadSpec> schedule,
                               std::chrono::milliseconds timeout);

}  // namespace net
}  // namespace slpspan

#endif  // SLPSPAN_NET_LOAD_DRIVER_H_
