// Blocking client for the framed-TCP protocol (docs/WIRE_PROTOCOL.md) —
// what the CLI's `query --connect`, examples/serve_client.cpp and the
// server tests speak. Internal header (not part of include/slpspan): the
// protocol surface for embedders is the Server; this client exists so every
// in-repo consumer shares one well-tested implementation instead of
// hand-rolling sockets (repo_lint confines socket syscalls to src/net/).
//
// Usage is synchronous and single-threaded: Connect, then either the
// one-shot Call() or the split-phase Send()/Receive() pair (the latter is
// how a test stalls its read side while the server backpressures). Frames
// for other in-flight ids that arrive while Receive(id) waits are demuxed
// and buffered, so interleaved requests on one connection work.

#ifndef SLPSPAN_NET_CLIENT_H_
#define SLPSPAN_NET_CLIENT_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/frame.h"
#include "net/socket.h"
#include "util/status.h"

namespace slpspan {
namespace net {

/// Outcome of one request as observed over the wire.
struct CallResult {
  uint8_t code = 0;  ///< StatusCode value from the kDone frame; 0 = OK
  std::string message;
  bool nonempty = false;
  uint64_t count_value = 0;
  bool count_exact = true;
  uint64_t tuples_streamed = 0;
  uint64_t pages = 0;
  /// Extract tuples, accumulated across pages (empty when `on_page` below
  /// consumed them instead).
  std::vector<SpanTuple> tuples;

  bool ok() const { return code == 0; }
};

struct CallOptions {
  uint64_t limit = UINT64_MAX;  ///< UINT64_MAX = no limit
  uint8_t priority = 1;         ///< Priority enum value (1 = kBatch)
  uint32_t deadline_ms = 0;     ///< relative; 0 = none
  /// When set, each received page is handed here instead of being
  /// accumulated into CallResult::tuples.
  std::function<void(const std::vector<SpanTuple>&)> on_page;
};

class Client {
 public:
  /// Connects and validates the server's hello frame.
  static Result<Client> Connect(const std::string& host, uint16_t port);

  Client(Client&&) = default;
  Client& operator=(Client&&) = default;

  /// Send + Receive in one call.
  Result<CallResult> Call(WireOp op, const std::string& document,
                          const std::string& pattern, CallOptions opts = {});

  /// Submits a request and returns its id without reading any reply —
  /// pair with Receive. Multiple Sends may be outstanding.
  Result<uint64_t> Send(WireOp op, const std::string& document,
                        const std::string& pattern, CallOptions opts = {});

  /// Blocks until the kDone frame for `id` arrives (demuxing and buffering
  /// frames of other outstanding ids on the way).
  Result<CallResult> Receive(uint64_t id);

  /// Requests cancellation of an in-flight id (fire and forget; the
  /// request still terminates with a kDone frame).
  Status Cancel(uint64_t id);

  /// Fetches a server statistics snapshot.
  Result<StatsFrame> Stats();

  /// Abrupt close (no protocol goodbye) — simulates a dying client.
  void Abort() { fd_.Reset(); }

  int fd() const { return fd_.get(); }

 private:
  explicit Client(OwnedFd fd) : fd_(std::move(fd)) {}

  /// Reads exactly one frame into *type / *payload.
  Status ReadFrame(uint8_t* type, std::string* payload);

  /// Routes one received frame into `pending_`. *done_id reports the id a
  /// kDone frame completed (0 = none).
  Status HandleFrame(uint8_t type, const std::string& payload,
                     uint64_t* done_id);

  struct PendingCall {
    CallOptions opts;
    CallResult result;
    bool done = false;
  };

  OwnedFd fd_;
  std::string read_buffer_;
  uint64_t next_id_ = 1;
  std::unordered_map<uint64_t, PendingCall> pending_;
};

}  // namespace net
}  // namespace slpspan

#endif  // SLPSPAN_NET_CLIENT_H_
