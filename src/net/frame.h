// Wire format of the framed-TCP front-end — the codec shared by the server,
// the client and the load driver. docs/WIRE_PROTOCOL.md is the normative
// description; this header is its one implementation.
//
// Every frame is `u32 payload_length (LE) | u8 type | payload`. Integers are
// little-endian fixed width; variable-length fields are LEB128 varints. The
// codec reuses the storage layer's BundleWriter/BundleReader, so decoding
// inherits the .prep discipline: every primitive read is bounds-checked
// against the remaining payload, and truncated, oversized or garbage input
// surfaces as a Status (kCorruption / kInvalidArgument) — never out-of-bounds
// access, never an abort. Allocation sizes decoded from the wire (page tuple
// counts, string lengths) are validated against both a hard cap and the
// bytes actually remaining before any buffer is sized from them.

#ifndef SLPSPAN_NET_FRAME_H_
#define SLPSPAN_NET_FRAME_H_

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "slpspan/runtime.h"
#include "slpspan/types.h"
#include "util/status.h"

namespace slpspan {
namespace net {

inline constexpr uint32_t kProtocolMagic = 0x53504C53;  // "SLPS" little-endian
inline constexpr uint16_t kProtocolVersion = 1;

/// `u32 length | u8 type` — length counts payload bytes only.
inline constexpr size_t kFrameHeaderBytes = 5;

/// Hard cap on a client->server payload. A request frame is a few hundred
/// bytes of identifiers plus a pattern; anything near this cap is abuse and
/// is answered with one kError frame followed by connection close.
inline constexpr uint32_t kMaxInboundPayload = 64u << 10;  // 64 KiB

/// Hard cap on a server->client payload (pages are sized by page_tuples, so
/// well under this; the cap is the client's corruption guard).
inline constexpr uint32_t kMaxOutboundPayload = 4u << 20;  // 4 MiB

/// Field caps enforced by the decoder, independent of payload bounds.
inline constexpr size_t kMaxDocumentNameBytes = 4096;
inline constexpr size_t kMaxPatternBytes = 16u << 10;
inline constexpr size_t kMaxMessageBytes = 4096;
inline constexpr uint32_t kMaxTupleVars = 4096;

enum class FrameType : uint8_t {
  kHello = 1,         ///< server -> client, once per connection on accept
  kRequest = 2,       ///< client -> server: submit one evaluation
  kCancel = 3,        ///< client -> server: withdraw a submitted request
  kPage = 4,          ///< server -> client: one page of result tuples
  kDone = 5,          ///< server -> client: terminal status of a request
  kStatsRequest = 6,  ///< client -> server: ask for a kStats frame
  kStats = 7,         ///< server -> client: serving statistics
  kError = 8,         ///< either direction: connection-level error, then close
};

/// Operation requested over the wire; maps 1:1 onto EngineRequest::Op.
enum class WireOp : uint8_t { kCheck = 0, kCount = 1, kExtract = 2 };

struct FrameHeader {
  uint32_t payload_size = 0;
  uint8_t type = 0;  // raw: validation against FrameType is the dispatcher's
};

struct HelloFrame {
  uint32_t magic = kProtocolMagic;
  uint16_t version = kProtocolVersion;
};

struct RequestFrame {
  uint64_t id = 0;           ///< client-chosen, echoed on every reply frame
  WireOp op = WireOp::kCount;
  uint8_t priority = 1;      ///< Priority enum value; clamped server-side
  uint32_t deadline_ms = 0;  ///< relative deadline; 0 = none
  uint64_t limit = UINT64_MAX;  ///< extract tuple cap; UINT64_MAX = none
  std::string document;      ///< document ref, resolved under the server root
  std::string pattern;       ///< spanner regex
};

struct PageFrame {
  uint64_t id = 0;
  std::vector<SpanTuple> tuples;
};

/// Terminal reply for one request: the status (StatusCode value) plus the
/// op-dependent result fields.
struct DoneFrame {
  uint64_t id = 0;
  uint8_t code = 0;  ///< StatusCode; 0 = OK
  std::string message;
  bool nonempty = false;
  uint64_t count_value = 0;
  bool count_exact = true;
  uint64_t tuples_streamed = 0;
};

/// Serving statistics snapshot (kStats payload).
struct StatsFrame {
  struct ClassStats {
    uint64_t submitted = 0;
    uint64_t completed = 0;
    uint64_t cancelled = 0;
    uint64_t expired = 0;
    uint64_t queue_p50_us = 0;
    uint64_t queue_p99_us = 0;
  };
  uint64_t active_connections = 0;
  uint64_t total_accepted = 0;
  uint64_t rejected_full = 0;
  uint64_t requests = 0;
  uint64_t pages_sent = 0;
  uint64_t tuples_sent = 0;
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
  uint64_t backpressure_pauses = 0;
  uint64_t bad_frames = 0;
  uint64_t cancelled_on_disconnect = 0;
  uint64_t max_write_queue_bytes = 0;
  std::array<ClassStats, kNumPriorityClasses> by_class{};
};

// ----------------------------------------------------------- encoding ------
// Encoders append one complete frame (header + payload) to *out, so a caller
// can batch several frames into one send buffer.

void AppendHello(std::string* out);
void AppendRequest(const RequestFrame& request, std::string* out);
void AppendCancel(uint64_t id, std::string* out);
void AppendPage(uint64_t id, std::span<const SpanTuple> tuples,
                std::string* out);
void AppendDone(const DoneFrame& done, std::string* out);
void AppendStatsRequest(std::string* out);
void AppendStats(const StatsFrame& stats, std::string* out);
void AppendError(const std::string& message, std::string* out);

/// Builds a DoneFrame from a request's terminal Result (status code, message
/// and the op-dependent payload fields).
DoneFrame MakeDone(uint64_t id, const Result<EngineOutput>& result);

// ----------------------------------------------------------- decoding ------

/// Parses the fixed header from `data` (which must hold at least
/// kFrameHeaderBytes). Never fails; payload_size validation against the
/// direction's cap is the caller's (the cap differs client/server).
FrameHeader DecodeHeader(const uint8_t* data);

Result<HelloFrame> DecodeHello(const uint8_t* payload, size_t size);
Result<RequestFrame> DecodeRequest(const uint8_t* payload, size_t size);
Result<uint64_t> DecodeCancel(const uint8_t* payload, size_t size);
Result<PageFrame> DecodePage(const uint8_t* payload, size_t size);
Result<DoneFrame> DecodeDone(const uint8_t* payload, size_t size);
Result<StatsFrame> DecodeStats(const uint8_t* payload, size_t size);
Result<std::string> DecodeError(const uint8_t* payload, size_t size);

}  // namespace net
}  // namespace slpspan

#endif  // SLPSPAN_NET_FRAME_H_
