// Blocking protocol client — see client.h.

#include "net/client.h"

#include <utility>

namespace slpspan {
namespace net {

Result<Client> Client::Connect(const std::string& host, uint16_t port) {
  Result<OwnedFd> fd = ConnectTcp(host, port);
  if (!fd.ok()) return fd.status();
  Client client(std::move(fd).value());
  uint8_t type = 0;
  std::string payload;
  Status st = client.ReadFrame(&type, &payload);
  if (!st.ok()) return st;
  if (type == static_cast<uint8_t>(FrameType::kError)) {
    Result<std::string> msg = DecodeError(
        reinterpret_cast<const uint8_t*>(payload.data()), payload.size());
    return Status::ResourceExhausted(msg.ok() ? msg.value()
                                              : "server rejected connection");
  }
  if (type != static_cast<uint8_t>(FrameType::kHello)) {
    return Status::Corruption("expected hello frame");
  }
  Result<HelloFrame> hello = DecodeHello(
      reinterpret_cast<const uint8_t*>(payload.data()), payload.size());
  if (!hello.ok()) return hello.status();
  return client;
}

Result<CallResult> Client::Call(WireOp op, const std::string& document,
                                const std::string& pattern,
                                CallOptions opts) {
  Result<uint64_t> id = Send(op, document, pattern, std::move(opts));
  if (!id.ok()) return id.status();
  return Receive(id.value());
}

Result<uint64_t> Client::Send(WireOp op, const std::string& document,
                              const std::string& pattern, CallOptions opts) {
  if (!fd_.valid()) return Status::InvalidArgument("client not connected");
  RequestFrame req;
  req.id = next_id_++;
  req.op = op;
  req.priority = opts.priority;
  req.deadline_ms = opts.deadline_ms;
  req.limit = opts.limit;
  req.document = document;
  req.pattern = pattern;
  std::string wire;
  AppendRequest(req, &wire);
  Status st = SendAll(fd_.get(), wire.data(), wire.size());
  if (!st.ok()) return st;
  PendingCall pending;
  pending.opts = std::move(opts);
  pending_.emplace(req.id, std::move(pending));
  return req.id;
}

Result<CallResult> Client::Receive(uint64_t id) {
  auto it = pending_.find(id);
  if (it == pending_.end()) return Status::InvalidArgument("unknown call id");
  while (!it->second.done) {
    uint8_t type = 0;
    std::string payload;
    Status st = ReadFrame(&type, &payload);
    if (!st.ok()) return st;
    uint64_t done_id = 0;
    st = HandleFrame(type, payload, &done_id);
    if (!st.ok()) return st;
  }
  CallResult result = std::move(it->second.result);
  pending_.erase(it);
  return result;
}

Status Client::Cancel(uint64_t id) {
  if (!fd_.valid()) return Status::InvalidArgument("client not connected");
  std::string wire;
  AppendCancel(id, &wire);
  return SendAll(fd_.get(), wire.data(), wire.size());
}

Result<StatsFrame> Client::Stats() {
  if (!fd_.valid()) return Status::InvalidArgument("client not connected");
  std::string wire;
  AppendStatsRequest(&wire);
  Status st = SendAll(fd_.get(), wire.data(), wire.size());
  if (!st.ok()) return st;
  // Stats frames are answered in order relative to other replies on this
  // connection; demux everything else until one arrives.
  for (;;) {
    uint8_t type = 0;
    std::string payload;
    st = ReadFrame(&type, &payload);
    if (!st.ok()) return st;
    if (type == static_cast<uint8_t>(FrameType::kStats)) {
      return DecodeStats(reinterpret_cast<const uint8_t*>(payload.data()),
                         payload.size());
    }
    uint64_t done_id = 0;
    st = HandleFrame(type, payload, &done_id);
    if (!st.ok()) return st;
  }
}

Status Client::ReadFrame(uint8_t* type, std::string* payload) {
  if (!fd_.valid()) return Status::InvalidArgument("client not connected");
  char buf[16384];
  for (;;) {
    if (read_buffer_.size() >= kFrameHeaderBytes) {
      FrameHeader h =
          DecodeHeader(reinterpret_cast<const uint8_t*>(read_buffer_.data()));
      if (h.payload_size > kMaxOutboundPayload) {
        return Status::Corruption("oversized frame from server");
      }
      if (read_buffer_.size() >= kFrameHeaderBytes + h.payload_size) {
        *type = h.type;
        payload->assign(read_buffer_, kFrameHeaderBytes, h.payload_size);
        read_buffer_.erase(0, kFrameHeaderBytes + h.payload_size);
        return Status::OK();
      }
    }
    bool would_block = false;
    Result<size_t> n = RecvSome(fd_.get(), buf, sizeof(buf), &would_block);
    if (!n.ok()) return n.status();
    if (n.value() == 0 && !would_block) {
      return Status::Corruption("connection closed by server");
    }
    read_buffer_.append(buf, n.value());
  }
}

Status Client::HandleFrame(uint8_t type, const std::string& payload,
                           uint64_t* done_id) {
  *done_id = 0;
  const uint8_t* data = reinterpret_cast<const uint8_t*>(payload.data());
  switch (static_cast<FrameType>(type)) {
    case FrameType::kPage: {
      Result<PageFrame> page = DecodePage(data, payload.size());
      if (!page.ok()) return page.status();
      auto it = pending_.find(page.value().id);
      if (it == pending_.end()) return Status::OK();  // cancelled / unknown
      it->second.result.pages++;
      if (it->second.opts.on_page) {
        it->second.opts.on_page(page.value().tuples);
      } else {
        auto& dst = it->second.result.tuples;
        auto& src = page.value().tuples;
        dst.insert(dst.end(), std::make_move_iterator(src.begin()),
                   std::make_move_iterator(src.end()));
      }
      return Status::OK();
    }
    case FrameType::kDone: {
      Result<DoneFrame> done = DecodeDone(data, payload.size());
      if (!done.ok()) return done.status();
      const DoneFrame& d = done.value();
      auto it = pending_.find(d.id);
      if (it == pending_.end()) return Status::OK();
      it->second.result.code = d.code;
      it->second.result.message = d.message;
      it->second.result.nonempty = d.nonempty;
      it->second.result.count_value = d.count_value;
      it->second.result.count_exact = d.count_exact;
      it->second.result.tuples_streamed = d.tuples_streamed;
      it->second.done = true;
      *done_id = d.id;
      return Status::OK();
    }
    case FrameType::kError: {
      Result<std::string> msg = DecodeError(data, payload.size());
      return Status::InvalidArgument(
          "server error: " + (msg.ok() ? msg.value() : "<undecodable>"));
    }
    case FrameType::kStats:
      return Status::OK();  // unrequested snapshot; ignore
    default:
      return Status::Corruption("unexpected frame type from server");
  }
}

}  // namespace net
}  // namespace slpspan
