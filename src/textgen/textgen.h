// Deterministic workload generators for examples, tests and benchmarks.
//
// The paper has no experimental section, so these generators define the
// document families of the experiment suite (DESIGN.md §2.2): repetitive
// machine-generated text (logs), biological sequences with planted motifs
// (DNA), edit-chains of near-identical versions (versioned documents), and
// adversarial incompressible strings. All generators are seeded and
// platform-stable (util/rng.h).

#ifndef SLPSPAN_TEXTGEN_TEXTGEN_H_
#define SLPSPAN_TEXTGEN_TEXTGEN_H_

#include <cstdint>
#include <string>
#include <vector>

namespace slpspan {

struct LogOptions {
  uint64_t lines = 1000;
  uint32_t distinct_users = 8;      ///< low cardinality => highly compressible
  uint32_t distinct_actions = 4;
  uint64_t seed = 42;
};

/// Synthetic server log, e.g. lines of the form
///   "ts=001234 user=u3 action=GET status=200\n"
/// Fields draw from small vocabularies, so RePair/LZ78 compress well.
std::string GenerateLog(const LogOptions& opts);

struct DnaOptions {
  uint64_t length = 10000;
  std::string motif = "ACGTACGT";
  double motif_rate = 0.01;  ///< expected planted motifs per position
  uint64_t seed = 7;
};

/// DNA-like string over ACGT with planted motif occurrences.
std::string GenerateDna(const DnaOptions& opts);

struct VersionedDocOptions {
  uint64_t base_length = 2000;
  uint32_t versions = 20;
  double edit_rate = 0.005;  ///< per-character probability of a point edit
  char separator = '\n';
  uint64_t seed = 11;
};

/// Concatenation of `versions` successive revisions of one base document,
/// each obtained from the previous by sparse point edits — the classic
/// "versioned wiki" workload where SLP compression shines.
std::string GenerateVersionedDoc(const VersionedDocOptions& opts);

/// Uniform random string over the given alphabet (incompressible baseline).
std::string GenerateRandom(uint64_t length, std::string_view alphabet, uint64_t seed);

/// block repeated `times` times (compressibility dial for crossover sweeps).
std::string GenerateRepeated(std::string_view block, uint64_t times);

}  // namespace slpspan

#endif  // SLPSPAN_TEXTGEN_TEXTGEN_H_
