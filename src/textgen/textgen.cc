// Deterministic workload generators for examples, tests and benchmarks
// (document families of the experiment suite, see textgen/textgen.h).
#include "textgen/textgen.h"

#include <string_view>

#include "util/check.h"
#include "util/rng.h"

namespace slpspan {

std::string GenerateLog(const LogOptions& opts) {
  Rng rng(opts.seed);
  static constexpr const char* kActions[] = {"GET", "PUT", "POST", "DEL",
                                             "HEAD", "LIST", "SCAN", "STAT"};
  static constexpr const char* kStatus[] = {"200", "404", "500", "301"};
  const uint32_t actions = std::min<uint32_t>(opts.distinct_actions, 8);
  std::string out;
  out.reserve(opts.lines * 48);
  uint64_t ts = 1000;
  for (uint64_t line = 0; line < opts.lines; ++line) {
    ts += rng.Range(1, 5);
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%08llu", static_cast<unsigned long long>(ts));
    out += "ts=";
    out += buf;
    out += " user=u";
    out += std::to_string(rng.Below(opts.distinct_users));
    out += " action=";
    out += kActions[rng.Below(actions == 0 ? 1 : actions)];
    out += " status=";
    out += kStatus[rng.Below(4)];
    out += "\n";
  }
  return out;
}

std::string GenerateDna(const DnaOptions& opts) {
  Rng rng(opts.seed);
  static constexpr char kBases[] = {'A', 'C', 'G', 'T'};
  std::string out;
  out.reserve(opts.length + opts.motif.size());
  const uint64_t rate_per_million =
      static_cast<uint64_t>(opts.motif_rate * 1'000'000.0);
  while (out.size() < opts.length) {
    if (!opts.motif.empty() && rng.Below(1'000'000) < rate_per_million) {
      out += opts.motif;
    } else {
      out += kBases[rng.Below(4)];
    }
  }
  out.resize(opts.length);
  return out;
}

std::string GenerateVersionedDoc(const VersionedDocOptions& opts) {
  Rng rng(opts.seed);
  static constexpr std::string_view kChars =
      "abcdefghijklmnopqrstuvwxyz ,.";
  std::string version;
  version.reserve(opts.base_length);
  for (uint64_t i = 0; i < opts.base_length; ++i) {
    version += kChars[rng.Below(kChars.size())];
  }
  const uint64_t edits_per_million =
      static_cast<uint64_t>(opts.edit_rate * 1'000'000.0);
  std::string out;
  out.reserve((opts.base_length + 1) * opts.versions);
  for (uint32_t v = 0; v < opts.versions; ++v) {
    out += version;
    out += opts.separator;
    for (char& c : version) {
      if (rng.Below(1'000'000) < edits_per_million) {
        c = kChars[rng.Below(kChars.size())];
      }
    }
  }
  return out;
}

std::string GenerateRandom(uint64_t length, std::string_view alphabet, uint64_t seed) {
  SLPSPAN_CHECK(!alphabet.empty());
  Rng rng(seed);
  std::string out;
  out.reserve(length);
  for (uint64_t i = 0; i < length; ++i) out += alphabet[rng.Below(alphabet.size())];
  return out;
}

std::string GenerateRepeated(std::string_view block, uint64_t times) {
  std::string out;
  out.reserve(block.size() * times);
  for (uint64_t i = 0; i < times; ++i) out += block;
  return out;
}

}  // namespace slpspan
