// Versioned, checksummed binary container for prepared-state bundles — the
// ".prep" wire format of the storage subsystem.
//
// Layout (all integers little-endian, fixed width):
//
//   magic      8   "SLPPREP\n"
//   version    u32 (1 or 2; kBundleVersion is what new bundles write)
//   flags      u32 (bit 0: counter section present)
//   doc_fp     u64 fingerprint of the *base* document grammar
//   query_fp   u64 fingerprint of the compiled query
//   payload    u64 byte length of everything after the header
//   checksum   u64 Checksum64 of the payload bytes
//   <payload>      sections: grammar, eval tables, optional counter
//
// Version 2 keeps the header identical and changes only the payload
// sections: integer streams carry a per-section codec tag (see
// src/storage/codec/codec.h and docs/STORAGE_CODECS.md). Version 1
// bundles remain readable byte-for-byte.
//
// Readers are strictly bounds-checked: every primitive read validates the
// remaining length first, so truncated or corrupt input surfaces as a
// Status (kCorruption) — never out-of-bounds access, never an abort. The
// checksum is an integrity check against bit rot and torn writes, not a
// security boundary; allocation sizes are nevertheless always validated
// against the remaining payload before any buffer is sized from file data.

#ifndef SLPSPAN_STORAGE_BUNDLE_FORMAT_H_
#define SLPSPAN_STORAGE_BUNDLE_FORMAT_H_

#include <cstdint>
#include <cstring>
#include <string>

#include "util/status.h"

namespace slpspan {
namespace storage {

inline constexpr char kBundleMagic[8] = {'S', 'L', 'P', 'P', 'R', 'E', 'P', '\n'};
inline constexpr uint32_t kBundleVersionV1 = 1;
inline constexpr uint32_t kBundleVersion = 2;
inline constexpr uint32_t kBundleFlagHasCounter = 1u << 0;
inline constexpr size_t kBundleHeaderSize = 8 + 4 + 4 + 8 + 8 + 8 + 8;

/// 64-bit payload checksum: four independent multiply-rotate lanes over
/// 32-byte blocks (xxHash-style), finalized with an avalanche mix. Chosen
/// over table-driven CRC-32 because it runs at memory speed — bundles are
/// megabytes and this pass sits on the warm-from-disk critical path.
uint64_t Checksum64(const uint8_t* data, size_t size);

/// Append-only little-endian encoder over a growing byte buffer.
class BundleWriter {
 public:
  void U8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void U16(uint16_t v) {
    buf_.push_back(static_cast<char>(v));
    buf_.push_back(static_cast<char>(v >> 8));
  }
  void U32(uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<char>(v >> (8 * i)));
  }
  void U64(uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<char>(v >> (8 * i)));
  }
  /// LEB128 (unsigned); 1 byte for values < 128, at most 10.
  void Varint(uint64_t v) {
    while (v >= 0x80) {
      U8(static_cast<uint8_t>(v) | 0x80);
      v >>= 7;
    }
    U8(static_cast<uint8_t>(v));
  }
  void Bytes(const void* data, size_t size) {
    buf_.append(static_cast<const char*>(data), size);
  }

  const std::string& buffer() const { return buf_; }
  std::string TakeBuffer() { return std::move(buf_); }

 private:
  std::string buf_;
};

/// Bounds-checked little-endian decoder over a borrowed byte range.
class BundleReader {
 public:
  BundleReader(const uint8_t* data, size_t size) : data_(data), end_(data + size) {}

  size_t remaining() const { return static_cast<size_t>(end_ - data_); }
  bool AtEnd() const { return data_ == end_; }
  const uint8_t* cursor() const { return data_; }

  Status U8(uint8_t* out) {
    if (remaining() < 1) return Truncated();
    *out = *data_++;
    return Status::OK();
  }
  Status U16(uint16_t* out) {
    if (remaining() < 2) return Truncated();
    *out = static_cast<uint16_t>(data_[0] | (data_[1] << 8));
    data_ += 2;
    return Status::OK();
  }
  Status U32(uint32_t* out) {
    if (remaining() < 4) return Truncated();
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(data_[i]) << (8 * i);
    data_ += 4;
    *out = v;
    return Status::OK();
  }
  Status U64(uint64_t* out) {
    if (remaining() < 8) return Truncated();
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(data_[i]) << (8 * i);
    data_ += 8;
    *out = v;
    return Status::OK();
  }
  Status Varint(uint64_t* out) {
    uint64_t v = 0;
    for (int shift = 0; shift < 70; shift += 7) {
      uint8_t byte = 0;
      Status st = U8(&byte);
      if (!st.ok()) return st;
      v |= static_cast<uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) {
        *out = v;
        return Status::OK();
      }
    }
    return Status::Corruption("overlong varint");
  }
  Status Bytes(void* out, size_t size) {
    if (remaining() < size) return Truncated();
    std::memcpy(out, data_, size);
    data_ += size;
    return Status::OK();
  }
  /// Advances past `size` bytes without copying (zero-copy decoders read
  /// through cursor() first, then consume the range).
  Status Skip(size_t size) {
    if (remaining() < size) return Truncated();
    data_ += size;
    return Status::OK();
  }

 private:
  static Status Truncated() { return Status::Corruption("truncated bundle"); }

  const uint8_t* data_;
  const uint8_t* end_;
};

struct BundleHeader {
  uint32_t version = 0;
  uint32_t flags = 0;
  uint64_t doc_fp = 0;
  uint64_t query_fp = 0;
  uint64_t payload_size = 0;
};

/// Prepends a header (with the payload's size and CRC filled in) to
/// `payload` and returns the complete bundle image. `version` must be a
/// version the reader accepts (kBundleVersionV1 or kBundleVersion) and
/// must match the section layout the payload was written in.
std::string SealBundle(uint32_t version, uint32_t flags, uint64_t doc_fp,
                       uint64_t query_fp, std::string payload);

/// Validates magic, version (1 and 2 are accepted), payload bounds and CRC
/// of a complete bundle image; on success the payload spans
/// [data + kBundleHeaderSize, data + kBundleHeaderSize + header.payload_size).
Result<BundleHeader> OpenBundle(const uint8_t* data, size_t size);

}  // namespace storage
}  // namespace slpspan

#endif  // SLPSPAN_STORAGE_BUNDLE_FORMAT_H_
