// Serialization of whole prepared states ("prepared bundles", .prep files):
// the sentinel-extended grammar, the Lemma 6.5 evaluation tables and — when
// they have materialized — the counting tables, sealed in the checksummed
// container of bundle_format.h.
//
// Section encodings (inside the payload):
//
//   [grammar]   num_nts u32, root u32, then per non-terminal
//               left u32, right u32 (right == 0xFFFFFFFF marks a leaf whose
//               terminal symbol is `left`). Ids are preserved verbatim —
//               deserialization goes through Slp::FromRules, not the
//               renumbering CnfAssembler — so the tables stay aligned.
//   [tables]    q u32, then per non-terminal the U and W bit-matrices, then
//               the per-leaf M_Tx cell grids. Matrices and grids carry a
//               1-byte format tag choosing dense or sparse encoding,
//               whichever is smaller — the U/W matrices of real documents
//               are mostly zero words, which shrinks bundles by an order of
//               magnitude and is what makes warm-from-disk ≫ re-prepare.
//   [counter]   (optional, header flag) the CountTables snapshot: key-sorted
//               packed-triple counts, final states, total, overflow bit.
//
// That is the v1 layout, still written under BundleCodec::kV1 and readable
// forever. Format v2 (the default) keeps the same section order but routes
// every integer stream through the codec layer (src/storage/codec/) behind
// per-section tags: a compact delta-varint grammar, dense-coded /
// sparse-coded matrices and grids (Elias-Fano positions, bitpacked or
// VarintGB payloads), and packed counter streams. The reader always follows
// the tags in the file; docs/STORAGE_CODECS.md has the byte-level map.
//
// Deserialization is strictly bounds-checked (see bundle_format.h) and
// returns Status errors — kCorruption for damaged input, kInvalidArgument
// for a bundle built for a different document or query — never aborting.
// The counter section is materialized *lazily*: the loaded PreparedState
// parses it on the first Count/At/Sample, so IsNonEmpty/Extract-only
// workloads never pay for it.

#ifndef SLPSPAN_STORAGE_PREPARED_BUNDLE_H_
#define SLPSPAN_STORAGE_PREPARED_BUNDLE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "api/internal.h"
#include "slpspan/bundle_codec.h"
#include "util/status.h"

namespace slpspan {
namespace storage {

using StatePtr = std::shared_ptr<const api_internal::PreparedState>;

/// Serializes `state` (grammar + tables + counter-if-materialized) into a
/// sealed bundle image. `codec` picks the section encoding: kV1 reproduces
/// the legacy format byte-for-byte, everything else writes format v2 with
/// the requested codec preference (kAuto: smallest per stream).
std::string SerializePreparedState(const api_internal::PreparedState& state,
                                   uint64_t doc_fp, uint64_t query_fp,
                                   BundleCodec codec = BundleCodec::kAuto);

/// Deserializes a bundle image. The expected fingerprints come from the
/// (document, query) pair the caller wants to serve; a mismatch is
/// kInvalidArgument (the bundle is intact but belongs to someone else).
/// `recharge` is attached to the resulting state (see PreparedState).
Result<StatePtr> DeserializePreparedState(
    const uint8_t* data, size_t size, uint64_t expected_doc_fp,
    uint64_t expected_query_fp, api_internal::PreparedState::RechargeFn recharge);

/// Writes `bytes` to a uniquely-named temp file next to `final_path`
/// (pid + counter suffix, so concurrent writers — even across processes
/// sharing a spill directory — never interleave) and returns the temp
/// path; the caller renames it into place. The temp is removed on failure.
Result<std::string> WriteTempFile(const std::string& final_path,
                                  const std::string& bytes);

/// Atomic file write shared by bundle export and the spill store:
/// WriteTempFile + rename, with the temp removed on any failure.
Status WriteFileAtomic(const std::string& path, const std::string& bytes);

/// Atomic bundle file write: SerializePreparedState + WriteFileAtomic.
Status WritePreparedBundleFile(const std::string& path,
                               const api_internal::PreparedState& state,
                               uint64_t doc_fp, uint64_t query_fp,
                               BundleCodec codec = BundleCodec::kAuto);

/// mmap-backed bundle file read (see mmap_file.h) + DeserializePreparedState.
Result<StatePtr> LoadPreparedBundleFile(
    const std::string& path, uint64_t expected_doc_fp,
    uint64_t expected_query_fp, api_internal::PreparedState::RechargeFn recharge);

/// Canonical spill-store file name for a fingerprint pair
/// ("pb-<doc_fp>-<query_fp>.prep", fingerprints in fixed-width hex). Bundles
/// dropped into a spill directory under this name are picked up by the
/// store's scan — the fleet pre-warming hook.
std::string SpillFileName(uint64_t doc_fp, uint64_t query_fp);

/// Inverse of SpillFileName; false if `name` is not a spill bundle name.
bool ParseSpillFileName(const std::string& name, uint64_t* doc_fp,
                        uint64_t* query_fp);

}  // namespace storage
}  // namespace slpspan

#endif  // SLPSPAN_STORAGE_PREPARED_BUNDLE_H_
