// Prepared-bundle binary format: header encode/decode with checksums; the
// reader treats every input byte as untrusted and bounds-checks throughout.
#include "storage/bundle_format.h"

namespace slpspan {
namespace storage {

namespace {

constexpr uint64_t kP1 = 0x9E3779B185EBCA87ull;
constexpr uint64_t kP2 = 0xC2B2AE3D27D4EB4Full;
constexpr uint64_t kP3 = 0x165667B19E3779F9ull;

inline uint64_t Rotl(uint64_t v, int r) { return (v << r) | (v >> (64 - r)); }

inline uint64_t Load64(const uint8_t* data) {
  uint64_t v;
  std::memcpy(&v, data, 8);
  return v;
}

}  // namespace

uint64_t Checksum64(const uint8_t* data, size_t size) {
  const uint64_t total = size;
  uint64_t h1 = kP1, h2 = kP2, h3 = kP3, h4 = kP1 ^ kP2;
  while (size >= 32) {
    // Four independent lanes: the multiply latency overlaps across lanes,
    // so this runs at close to memory bandwidth.
    h1 = Rotl(h1 ^ (Load64(data) * kP2), 29) * kP1;
    h2 = Rotl(h2 ^ (Load64(data + 8) * kP2), 31) * kP1;
    h3 = Rotl(h3 ^ (Load64(data + 16) * kP2), 33) * kP1;
    h4 = Rotl(h4 ^ (Load64(data + 24) * kP2), 37) * kP1;
    data += 32;
    size -= 32;
  }
  uint64_t h = Rotl(h1, 1) ^ Rotl(h2, 7) ^ Rotl(h3, 12) ^ Rotl(h4, 18) ^ total;
  while (size >= 8) {
    h = Rotl(h ^ (Load64(data) * kP2), 27) * kP1 + kP3;
    data += 8;
    size -= 8;
  }
  for (size_t i = 0; i < size; ++i) {
    h = Rotl(h ^ (data[i] * kP3), 11) * kP1;
  }
  h ^= h >> 33;
  h *= kP2;
  h ^= h >> 29;
  h *= kP3;
  h ^= h >> 32;
  return h;
}

std::string SealBundle(uint32_t version, uint32_t flags, uint64_t doc_fp,
                       uint64_t query_fp, std::string payload) {
  BundleWriter header;
  header.Bytes(kBundleMagic, sizeof(kBundleMagic));
  header.U32(version);
  header.U32(flags);
  header.U64(doc_fp);
  header.U64(query_fp);
  header.U64(payload.size());
  header.U64(Checksum64(reinterpret_cast<const uint8_t*>(payload.data()),
                        payload.size()));
  std::string out = header.TakeBuffer();
  // Writer-side invariant on bytes this function just produced — not
  // untrusted input (the reader path is strictly bounds-checked instead).
  SLPSPAN_DCHECK(out.size() == kBundleHeaderSize);  // repo-lint: allow(check-in-library)
  out += payload;
  return out;
}

Result<BundleHeader> OpenBundle(const uint8_t* data, size_t size) {
  if (size < kBundleHeaderSize) {
    return Status::Corruption("bundle shorter than its header");
  }
  BundleReader reader(data, size);
  char magic[sizeof(kBundleMagic)];
  (void)reader.Bytes(magic, sizeof(magic));
  if (std::memcmp(magic, kBundleMagic, sizeof(kBundleMagic)) != 0) {
    return Status::Corruption("not a prepared-state bundle (bad magic)");
  }
  BundleHeader header;
  uint64_t checksum = 0;
  (void)reader.U32(&header.version);
  (void)reader.U32(&header.flags);
  (void)reader.U64(&header.doc_fp);
  (void)reader.U64(&header.query_fp);
  (void)reader.U64(&header.payload_size);
  (void)reader.U64(&checksum);
  if (header.version < kBundleVersionV1 || header.version > kBundleVersion) {
    return Status::Corruption("unsupported bundle version " +
                              std::to_string(header.version));
  }
  if (header.payload_size != size - kBundleHeaderSize) {
    return Status::Corruption("bundle payload size mismatch");
  }
  if (Checksum64(data + kBundleHeaderSize, header.payload_size) != checksum) {
    return Status::Corruption("bundle checksum mismatch");
  }
  return header;
}

}  // namespace storage
}  // namespace slpspan
