// Block bitpacking (SIMD-BP128 style): 128-value blocks, each stored as a
// width byte (the block's max significant bit count, 0..64) followed by
// ceil(count*width/8) bytes of LSB-first packed bits. A block of zeros
// costs one byte; the per-nt index arrays of real bundles pack to the
// pool's log2 in bits instead of 16 or 32. Unpacking dispatches through
// BitPackOps (scalar / AVX2).
#include <bit>
#include <cstring>

#include "core/kernels/kernels.h"
#include "storage/codec/bitpack.h"
#include "storage/codec/codec.h"

namespace slpspan {
namespace storage {
namespace codec {

namespace {

constexpr size_t kBlockSize = 128;

inline size_t PackedBytes(size_t count, unsigned width) {
  return (count * width + 7) / 8;
}

class BitPackCodecImpl final : public Codec {
 public:
  CodecId id() const override { return CodecId::kBitPack; }
  const char* name() const override { return "bitpack"; }

  void Encode(const uint64_t* values, size_t count,
              BundleWriter* w) const override {
    for (size_t base = 0; base < count; base += kBlockSize) {
      const size_t n = count - base < kBlockSize ? count - base : kBlockSize;
      uint64_t max = 0;
      for (size_t i = 0; i < n; ++i) max |= values[base + i];
      const unsigned width = static_cast<unsigned>(std::bit_width(max));
      w->U8(static_cast<uint8_t>(width));
      unsigned __int128 acc = 0;
      unsigned acc_bits = 0;
      for (size_t i = 0; i < n; ++i) {
        acc |= static_cast<unsigned __int128>(values[base + i]) << acc_bits;
        acc_bits += width;
        while (acc_bits >= 8) {
          w->U8(static_cast<uint8_t>(acc));
          acc >>= 8;
          acc_bits -= 8;
        }
      }
      if (acc_bits > 0) w->U8(static_cast<uint8_t>(acc));
    }
  }

  Status Decode(BundleReader* r, size_t count,
                std::vector<uint64_t>* out) const override {
    // Minimum size: one width byte per block (an all-zero stream). The
    // division form is overflow-proof for adversarial counts.
    if (count / kBlockSize > r->remaining() ||
        r->remaining() < (count + kBlockSize - 1) / kBlockSize) {
      return Status::Corruption("truncated bitpack stream");
    }
    out->resize(count);
    const BitPackOps& ops = ActiveBitPackOps();
    for (size_t base = 0; base < count; base += kBlockSize) {
      const size_t n = count - base < kBlockSize ? count - base : kBlockSize;
      uint8_t width = 0;
      Status st = r->U8(&width);
      if (!st.ok()) return st;
      if (width > 64) return Status::Corruption("bitpack width out of range");
      const size_t bytes = PackedBytes(n, width);
      const uint8_t* src = r->cursor();
      st = r->Skip(bytes);
      if (!st.ok()) return st;
      ops.unpack(src, width, n, out->data() + base);
    }
    return Status::OK();
  }
};

}  // namespace

const Codec& BitPackCodec() {
  static const BitPackCodecImpl codec;
  return codec;
}

const BitPackOps& ActiveBitPackOps() {
  // Resolved once, from the matrix-kernel dispatch: that layer already
  // folds in CPUID and the SLPSPAN_KERNEL override, so the codec and the
  // kernels always select the same instruction set.
  static const BitPackOps* ops = [] {
    if (std::strcmp(kernels::ActiveKernel().name, "avx2") == 0) {
      if (const BitPackOps* avx2 = Avx2BitPackOpsImpl()) return avx2;
    }
    return &ScalarBitPackOps();
  }();
  return *ops;
}

}  // namespace codec
}  // namespace storage
}  // namespace slpspan
