// Elias-Fano encoding of monotone non-decreasing sequences — the sparse
// matrix and sparse leaf-grid position lists. Each value splits into l low
// bits (packed) and a high part (unary-coded gaps in a bitvector); with
// l ~ floor(log2(max/count)) the cost approaches the information-theoretic
// 2 + log2(universe/count) bits per position.
//
// Layout (empty streams encode to zero bytes — the count always comes from
// surrounding section data): varint max (the last value), one byte l,
// ceil(count*l/8) bytes of packed low bits, and ceil((count + (max >> l))/8)
// bytes of high-bits bitvector (for each value, its gap in zeros, then a
// one).
#include <bit>
#include <limits>

#include "storage/codec/bitpack.h"
#include "storage/codec/codec.h"

namespace slpspan {
namespace storage {
namespace codec {

namespace {

class EliasFanoCodecImpl final : public Codec {
 public:
  CodecId id() const override { return CodecId::kEliasFano; }
  const char* name() const override { return "eliasfano"; }

  void Encode(const uint64_t* values, size_t count,
              BundleWriter* w) const override {
    if (count == 0) return;
    const uint64_t max = values[count - 1];
    w->Varint(max);
    const unsigned l =
        max / count <= 1
            ? 0
            : static_cast<unsigned>(std::bit_width(max / count)) - 1;
    w->U8(static_cast<uint8_t>(l));
    // Low bits, packed LSB-first.
    const uint64_t low_mask = l == 0 ? 0 : (uint64_t{1} << l) - 1;
    unsigned __int128 acc = 0;
    unsigned acc_bits = 0;
    for (size_t i = 0; i < count; ++i) {
      acc |= static_cast<unsigned __int128>(values[i] & low_mask) << acc_bits;
      acc_bits += l;
      while (acc_bits >= 8) {
        w->U8(static_cast<uint8_t>(acc));
        acc >>= 8;
        acc_bits -= 8;
      }
    }
    if (acc_bits > 0) w->U8(static_cast<uint8_t>(acc));
    // High bits: unary gaps.
    const size_t high_bits = count + static_cast<size_t>(max >> l);
    std::vector<uint8_t> high((high_bits + 7) / 8, 0);
    for (size_t i = 0; i < count; ++i) {
      const size_t pos = static_cast<size_t>(values[i] >> l) + i;
      high[pos / 8] |= static_cast<uint8_t>(1u << (pos % 8));
    }
    w->Bytes(high.data(), high.size());
  }

  Status Decode(BundleReader* r, size_t count,
                std::vector<uint64_t>* out) const override {
    if (count == 0) {
      out->clear();
      return Status::OK();
    }
    uint64_t max = 0;
    Status st = r->Varint(&max);
    if (!st.ok()) return st;
    uint8_t l = 0;
    st = r->U8(&l);
    if (!st.ok()) return st;
    if (l > 63) return Status::Corruption("elias-fano low width out of range");
    const uint64_t hi_last = max >> l;
    // Validate both array lengths against the remaining payload before any
    // allocation; all arithmetic is overflow-guarded.
    constexpr size_t kSizeMax = std::numeric_limits<size_t>::max();
    if (l != 0 && count > (kSizeMax - 7) / l) {
      return Status::Corruption("elias-fano low bits overflow");
    }
    const size_t low_bytes = (count * static_cast<size_t>(l) + 7) / 8;
    if (hi_last > kSizeMax - count || count + hi_last > kSizeMax - 7) {
      return Status::Corruption("elias-fano high bits overflow");
    }
    const size_t high_bits = count + static_cast<size_t>(hi_last);
    const size_t high_bytes = (high_bits + 7) / 8;
    if (r->remaining() < low_bytes ||
        r->remaining() - low_bytes < high_bytes) {
      return Status::Corruption("truncated elias-fano stream");
    }
    out->resize(count);
    const uint8_t* low = r->cursor();
    (void)r->Skip(low_bytes);
    ScalarBitPackOps().unpack(low, l, count, out->data());
    const uint8_t* high = r->cursor();
    (void)r->Skip(high_bytes);
    // Walk the unary high bits: the i-th one-bit at overall position p
    // encodes a high part of p - i.
    size_t idx = 0;
    for (size_t pos = 0; pos < high_bits && idx < count; ++pos) {
      if ((high[pos / 8] >> (pos % 8)) & 1) {
        const uint64_t hi = static_cast<uint64_t>(pos - idx);
        if (hi > hi_last) {
          return Status::Corruption("elias-fano position exceeds universe");
        }
        (*out)[idx] |= hi << l;
        ++idx;
      }
    }
    if (idx != count) {
      return Status::Corruption("elias-fano high bits exhausted early");
    }
    return Status::OK();
  }
};

}  // namespace

const Codec& EliasFanoCodec() {
  static const EliasFanoCodecImpl codec;
  return codec;
}

}  // namespace codec
}  // namespace storage
}  // namespace slpspan
