// Group-varint (VarintGB) adapted to u64: four values share one tag byte
// whose 2-bit fields select a byte length of 1, 2, 4 or 8 per value. One
// branch-light length lookup replaces the per-byte continuation-bit test of
// LEB128, and the counter section's small key deltas and counts land in the
// 1-byte class almost every time.
#include <cstddef>

#include "storage/codec/codec.h"

namespace slpspan {
namespace storage {
namespace codec {

namespace {

constexpr size_t kGroupSize = 4;
// 2-bit length classes: 0 -> 1 byte, 1 -> 2, 2 -> 4, 3 -> 8.
constexpr size_t kClassBytes[4] = {1, 2, 4, 8};

inline unsigned LengthClass(uint64_t v) {
  if (v < (uint64_t{1} << 8)) return 0;
  if (v < (uint64_t{1} << 16)) return 1;
  if (v < (uint64_t{1} << 32)) return 2;
  return 3;
}

class VarintGBCodecImpl final : public Codec {
 public:
  CodecId id() const override { return CodecId::kVarintGB; }
  const char* name() const override { return "varintgb"; }

  void Encode(const uint64_t* values, size_t count,
              BundleWriter* w) const override {
    for (size_t base = 0; base < count; base += kGroupSize) {
      const size_t n = count - base < kGroupSize ? count - base : kGroupSize;
      uint8_t tag = 0;
      for (size_t i = 0; i < n; ++i) {
        tag |= static_cast<uint8_t>(LengthClass(values[base + i]) << (2 * i));
      }
      w->U8(tag);
      for (size_t i = 0; i < n; ++i) {
        const uint64_t v = values[base + i];
        const size_t bytes = kClassBytes[(tag >> (2 * i)) & 3];
        for (size_t b = 0; b < bytes; ++b) {
          w->U8(static_cast<uint8_t>(v >> (8 * b)));
        }
      }
    }
  }

  Status Decode(BundleReader* r, size_t count,
                std::vector<uint64_t>* out) const override {
    // Minimum size: one tag byte per group plus one byte per value.
    const size_t groups = (count + kGroupSize - 1) / kGroupSize;
    if (r->remaining() < groups || r->remaining() - groups < count) {
      return Status::Corruption("truncated varintgb stream");
    }
    out->resize(count);
    for (size_t base = 0; base < count; base += kGroupSize) {
      const size_t n = count - base < kGroupSize ? count - base : kGroupSize;
      uint8_t tag = 0;
      Status st = r->U8(&tag);
      if (!st.ok()) return st;
      for (size_t i = 0; i < n; ++i) {
        const size_t bytes = kClassBytes[(tag >> (2 * i)) & 3];
        if (r->remaining() < bytes) {
          return Status::Corruption("truncated varintgb group");
        }
        uint64_t v = 0;
        for (size_t b = 0; b < bytes; ++b) {
          uint8_t byte = 0;
          (void)r->U8(&byte);
          v |= static_cast<uint64_t>(byte) << (8 * b);
        }
        (*out)[base + i] = v;
      }
    }
    return Status::OK();
  }
};

}  // namespace

const Codec& VarintGBCodec() {
  static const VarintGBCodecImpl codec;
  return codec;
}

}  // namespace codec
}  // namespace storage
}  // namespace slpspan
