// AVX2 bitpack unpacking: widening loads for the byte-aligned width
// classes (8/16/32/64 bits per value), which VarintGB-style data and the
// matrix-pool index arrays land on constantly; every other width delegates
// to the scalar shift register. Compiled with -mavx2 in isolation (the
// codec counterpart of kernels_avx2.cc, allowed by the repo_lint
// avx2-outside-kernels rule); nothing here executes unless the kernel
// dispatch resolved to AVX2.
#include "storage/codec/bitpack.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include <cstring>

namespace slpspan {
namespace storage {
namespace codec {
namespace {

void UnpackAvx2(const uint8_t* src, unsigned width, size_t count,
                uint64_t* dst) {
  size_t i = 0;
  switch (width) {
    case 8:
      for (; i + 4 <= count; i += 4, src += 4) {
        uint32_t quad;
        std::memcpy(&quad, src, 4);
        const __m256i v =
            _mm256_cvtepu8_epi64(_mm_cvtsi32_si128(static_cast<int>(quad)));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), v);
      }
      break;
    case 16:
      for (; i + 4 <= count; i += 4, src += 8) {
        const __m256i v = _mm256_cvtepu16_epi64(
            _mm_loadl_epi64(reinterpret_cast<const __m128i*>(src)));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), v);
      }
      break;
    case 32:
      for (; i + 4 <= count; i += 4, src += 16) {
        const __m256i v = _mm256_cvtepu32_epi64(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(src)));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), v);
      }
      break;
    case 64:
      std::memcpy(dst, src, count * 8);
      return;
    default:
      // Non-byte-aligned widths share the scalar shift register.
      ScalarBitPackOps().unpack(src, width, count, dst);
      return;
  }
  // Byte-aligned tail (fewer than four values left; src has advanced).
  const size_t bytes = width / 8;
  for (; i < count; ++i, src += bytes) {
    uint64_t v = 0;
    std::memcpy(&v, src, bytes);
    dst[i] = v;
  }
}

}  // namespace

const BitPackOps* Avx2BitPackOpsImpl() {
  static constexpr BitPackOps ops = {"avx2", UnpackAvx2};
  return &ops;
}

}  // namespace codec
}  // namespace storage
}  // namespace slpspan

#else  // !defined(__AVX2__)

namespace slpspan {
namespace storage {
namespace codec {

const BitPackOps* Avx2BitPackOpsImpl() { return nullptr; }

}  // namespace codec
}  // namespace storage
}  // namespace slpspan

#endif  // defined(__AVX2__)
