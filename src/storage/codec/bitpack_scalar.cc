// Scalar baseline for the bitpack unpack loop. Portable to any target;
// also the tail/odd-width fallback the AVX2 table delegates to.
//
// The hot path is a 64-bit bit-buffer refilled with one unaligned 64-bit
// load per refill instead of byte-at-a-time: a refill tops the buffer up
// to >= 57 valid bits, so any width <= 57 needs at most one refill per
// value. Reads never cross the block's own byte span (exactly
// ceil(count*width/8) bytes are valid — the stream may end right after),
// so the loop falls back to byte refills for the last < 8 bytes. Widths
// 58..64 (values near 2^64, never produced by our streams but legal
// input) take a 128-bit shift-register slow path.
#include <cstring>

#include "storage/codec/bitpack.h"

namespace slpspan {
namespace storage {
namespace codec {

namespace {

void UnpackWide(const uint8_t* src, unsigned width, size_t count,
                uint64_t* dst) {
  const uint64_t mask =
      width >= 64 ? ~uint64_t{0} : (uint64_t{1} << width) - 1;
  unsigned __int128 acc = 0;
  unsigned acc_bits = 0;
  for (size_t i = 0; i < count; ++i) {
    while (acc_bits < width) {
      acc |= static_cast<unsigned __int128>(*src++) << acc_bits;
      acc_bits += 8;
    }
    dst[i] = static_cast<uint64_t>(acc) & mask;
    acc >>= width;
    acc_bits -= width;
  }
}

void UnpackScalar(const uint8_t* src, unsigned width, size_t count,
                  uint64_t* dst) {
  if (width == 0) {
    std::memset(dst, 0, count * sizeof(uint64_t));
    return;
  }
  if (width == 64) {
    std::memcpy(dst, src, count * sizeof(uint64_t));
    return;
  }
  if (width > 57) {
    UnpackWide(src, width, count, dst);
    return;
  }
  // Byte-aligned widths decode with plain widening loads.
  if (width == 8) {
    for (size_t i = 0; i < count; ++i) dst[i] = src[i];
    return;
  }
  if (width == 16) {
    for (size_t i = 0; i < count; ++i) {
      uint16_t v;
      std::memcpy(&v, src + 2 * i, sizeof v);
      dst[i] = v;
    }
    return;
  }
  if (width == 32) {
    for (size_t i = 0; i < count; ++i) {
      uint32_t v;
      std::memcpy(&v, src + 4 * i, sizeof v);
      dst[i] = v;
    }
    return;
  }

  const uint8_t* const end = src + (count * width + 7) / 8;
  const uint64_t mask = (uint64_t{1} << width) - 1;
  uint64_t buf = 0;
  unsigned bits = 0;
  for (size_t i = 0; i < count; ++i) {
    if (bits < width) {
      if (end - src >= 8) {
        uint64_t next;
        std::memcpy(&next, src, sizeof next);
        // Consume only the whole bytes that fit above the `bits` valid
        // bits; mask the rest off so the buffer's upper bits stay zero.
        const unsigned consumed = (64 - bits) >> 3;
        if (bits == 0) {
          buf = next;
        } else {
          buf |= (next & ((uint64_t{1} << (8 * consumed)) - 1)) << bits;
        }
        src += consumed;
        bits += 8 * consumed;
      } else {
        do {
          buf |= static_cast<uint64_t>(*src++) << bits;
          bits += 8;
        } while (bits < width);
      }
    }
    dst[i] = buf & mask;
    buf >>= width;
    bits -= width;
  }
}

}  // namespace

const BitPackOps& ScalarBitPackOps() {
  static constexpr BitPackOps ops = {"scalar", UnpackScalar};
  return ops;
}

}  // namespace codec
}  // namespace storage
}  // namespace slpspan
