// Integer codecs for the ".prep" bundle format v2 — the one layer allowed
// to turn a section's uint64 stream into bytes and back.
//
// Every v2 section that carries an integer stream writes it as a *tagged
// stream*: one CodecId byte followed by that codec's encoding of `count`
// values, where `count` is always known to the reader from surrounding
// section data (never trusted from the stream itself). Four codecs:
//
//   kRaw       count fixed-width little-endian u64 words (the v1 shape).
//   kVarintGB  groups of four values behind a 2-bit-per-value length tag
//              (byte lengths 1/2/4/8) — group-varint adapted to u64, for
//              the counter section's small key deltas and counts.
//   kBitPack   blocks of 128 values packed LSB-first at the block's max
//              bit width (SIMD-BP128 style; one width byte per block).
//              Unpacking dispatches to a scalar or AVX2 translation unit
//              following the src/core/kernels/ pattern.
//   kEliasFano monotone non-decreasing streams only (sparse-matrix and
//              sparse-grid positions): packed low bits plus a unary
//              high-bits bitvector, ~2 + log2(universe/count) bits/value.
//
// Decoders are strictly bounds-checked, mirroring bundle_format.h: every
// length implied by the input is validated against the reader's remaining
// bytes *before* any allocation is sized from it, so truncated, corrupt or
// adversarial input surfaces as Status (kCorruption) — never a crash, hang
// or out-of-bounds access. Encoded bytes round-trip bit-identically
// (property-tested in tests/codec_test.cc, fuzzed against garbage there
// too).

#ifndef SLPSPAN_STORAGE_CODEC_CODEC_H_
#define SLPSPAN_STORAGE_CODEC_CODEC_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "slpspan/bundle_codec.h"
#include "storage/bundle_format.h"
#include "util/status.h"

namespace slpspan {
namespace storage {
namespace codec {

/// Wire tag of a tagged stream — the first byte after a v2 section header.
enum class CodecId : uint8_t {
  kRaw = 0,
  kVarintGB = 1,
  kBitPack = 2,
  kEliasFano = 3,
};

/// One integer codec. Implementations are stateless singletons.
class Codec {
 public:
  virtual ~Codec() = default;

  virtual CodecId id() const = 0;
  virtual const char* name() const = 0;

  /// Appends the encoding of values[0..count) to `*w`. Elias-Fano requires
  /// the values to be monotone non-decreasing; every other codec accepts
  /// arbitrary u64 streams.
  virtual void Encode(const uint64_t* values, size_t count,
                      BundleWriter* w) const = 0;

  /// Decodes exactly `count` values into `*out` (resized by the codec only
  /// after its minimum encoded size has been validated against the
  /// reader). Strictly bounds-checked; kCorruption on any malformed input.
  virtual Status Decode(BundleReader* r, size_t count,
                        std::vector<uint64_t>* out) const = 0;
};

const Codec& RawCodec();
const Codec& VarintGBCodec();
const Codec& BitPackCodec();
const Codec& EliasFanoCodec();

/// Wire tag -> codec; nullptr for an unknown tag (reader rejects it).
const Codec* CodecById(uint8_t id);

/// Whether a stream is known monotone non-decreasing (position lists) —
/// the precondition for Elias-Fano eligibility.
enum class StreamKind { kGeneral, kMonotone };

/// Writes `values` as a tagged stream: the codec implied by `choice`
/// (BundleCodec::kAuto encodes with every eligible codec and keeps the
/// smallest; a fixed choice that does not apply to `kind` — Elias-Fano on
/// a general stream — falls back to kRaw), then its payload.
void WriteTaggedU64s(const uint64_t* values, size_t count, BundleCodec choice,
                     StreamKind kind, BundleWriter* w);

/// Reads a tagged stream of exactly `count` values; kCorruption on an
/// unknown codec tag or malformed payload.
Status ReadTaggedU64s(BundleReader* r, size_t count,
                      std::vector<uint64_t>* out);

}  // namespace codec
}  // namespace storage
}  // namespace slpspan

#endif  // SLPSPAN_STORAGE_CODEC_CODEC_H_
