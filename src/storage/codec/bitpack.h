// Internal dispatch table for the block-bitpacking codec's unpack hot loop,
// mirroring the src/core/kernels/ pattern: a scalar baseline TU that is
// always available and an AVX2 TU compiled with -mavx2 in isolation,
// selected at runtime behind the same CPUID check and SLPSPAN_KERNEL
// override as the matrix kernels (so the CI kernel matrix exercises both
// decode paths for free).
//
// The packed layout is an LSB-first bit stream over little-endian bytes:
// value i of a block occupies bits [i*width, (i+1)*width). Packing is
// scalar-only (encode is off the warm-load critical path); unpacking is
// what the table accelerates.

#ifndef SLPSPAN_STORAGE_CODEC_BITPACK_H_
#define SLPSPAN_STORAGE_CODEC_BITPACK_H_

#include <cstddef>
#include <cstdint>

namespace slpspan {
namespace storage {
namespace codec {

/// One instruction-set implementation of the bitpack unpack loop.
struct BitPackOps {
  const char* name;

  /// Unpacks `count` values of `width` bits (0 <= width <= 64) from `src`
  /// into `dst`. `src` holds at least ceil(count*width/8) bytes — the
  /// caller (BitPackCodec::Decode) has already bounds-checked that length
  /// against the reader.
  void (*unpack)(const uint8_t* src, unsigned width, size_t count,
                 uint64_t* dst);
};

/// The portable baseline (always available).
const BitPackOps& ScalarBitPackOps();

/// Internal hook for the -mavx2 translation unit: the raw AVX2 table when
/// compiled in, else nullptr. Callers go through ActiveBitPackOps(), which
/// adds the CPUID/dispatch check.
const BitPackOps* Avx2BitPackOpsImpl();

/// The dispatched table: AVX2 when the matrix-kernel dispatch resolved to
/// AVX2 (CPUID plus the SLPSPAN_KERNEL override), scalar otherwise.
const BitPackOps& ActiveBitPackOps();

}  // namespace codec
}  // namespace storage
}  // namespace slpspan

#endif  // SLPSPAN_STORAGE_CODEC_BITPACK_H_
