// Codec registry and the tagged-stream helpers every v2 section goes
// through; the raw (fixed-width) codec lives here too.
#include "storage/codec/codec.h"

namespace slpspan {
namespace storage {
namespace codec {

namespace {

class RawCodecImpl final : public Codec {
 public:
  CodecId id() const override { return CodecId::kRaw; }
  const char* name() const override { return "raw"; }

  void Encode(const uint64_t* values, size_t count,
              BundleWriter* w) const override {
    for (size_t i = 0; i < count; ++i) w->U64(values[i]);
  }

  Status Decode(BundleReader* r, size_t count,
                std::vector<uint64_t>* out) const override {
    if (r->remaining() / 8 < count) {
      return Status::Corruption("truncated raw stream");
    }
    out->resize(count);
    for (size_t i = 0; i < count; ++i) (void)r->U64(&(*out)[i]);
    return Status::OK();
  }
};

}  // namespace

const Codec& RawCodec() {
  static const RawCodecImpl codec;
  return codec;
}

const Codec* CodecById(uint8_t id) {
  switch (static_cast<CodecId>(id)) {
    case CodecId::kRaw:
      return &RawCodec();
    case CodecId::kVarintGB:
      return &VarintGBCodec();
    case CodecId::kBitPack:
      return &BitPackCodec();
    case CodecId::kEliasFano:
      return &EliasFanoCodec();
  }
  return nullptr;
}

void WriteTaggedU64s(const uint64_t* values, size_t count, BundleCodec choice,
                     StreamKind kind, BundleWriter* w) {
  const Codec* fixed = nullptr;
  switch (choice) {
    case BundleCodec::kV1:  // v1 has no tagged streams; treat as raw
    case BundleCodec::kRaw:
      fixed = &RawCodec();
      break;
    case BundleCodec::kVarintGB:
      fixed = &VarintGBCodec();
      break;
    case BundleCodec::kBitPack:
      fixed = &BitPackCodec();
      break;
    case BundleCodec::kEliasFano:
      // Elias-Fano only represents monotone streams; forcing it leaves
      // general streams raw (the position lists still get EF).
      fixed = kind == StreamKind::kMonotone ? &EliasFanoCodec() : &RawCodec();
      break;
    case BundleCodec::kAuto:
      break;
  }
  if (fixed != nullptr) {
    w->U8(static_cast<uint8_t>(fixed->id()));
    fixed->Encode(values, count, w);
    return;
  }
  // Auto: encode with every eligible codec and keep the smallest (raw wins
  // ties — it is also the fastest to decode). Encode-side only; readers
  // never re-derive this choice, they follow the tag.
  const Codec* best = &RawCodec();
  std::string best_payload;
  {
    BundleWriter scratch;
    best->Encode(values, count, &scratch);
    best_payload = scratch.TakeBuffer();
  }
  std::vector<const Codec*> candidates = {&VarintGBCodec(), &BitPackCodec()};
  if (kind == StreamKind::kMonotone) candidates.push_back(&EliasFanoCodec());
  for (const Codec* candidate : candidates) {
    BundleWriter scratch;
    candidate->Encode(values, count, &scratch);
    if (scratch.buffer().size() < best_payload.size()) {
      best = candidate;
      best_payload = scratch.TakeBuffer();
    }
  }
  w->U8(static_cast<uint8_t>(best->id()));
  w->Bytes(best_payload.data(), best_payload.size());
}

Status ReadTaggedU64s(BundleReader* r, size_t count,
                      std::vector<uint64_t>* out) {
  uint8_t id = 0;
  Status st = r->U8(&id);
  if (!st.ok()) return st;
  const Codec* codec = CodecById(id);
  if (codec == nullptr) {
    return Status::Corruption("unknown codec tag " + std::to_string(id));
  }
  return codec->Decode(r, count, out);
}

}  // namespace codec
}  // namespace storage
}  // namespace slpspan
