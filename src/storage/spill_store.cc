// SpillStore — disk tier for evicted prepared states: budgeted LRU of
// spilled bundles with generation-stamped files and reclamation.
#include "storage/spill_store.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <unordered_set>
#include <vector>

#include "storage/bundle_format.h"

namespace slpspan {
namespace storage {

namespace fs = std::filesystem;

namespace {

// spill.index: a checksummed snapshot of the store's LRU, MRU first.
//
//   magic     8   "SLPSPIX\n"
//   version   u32
//   flags     u32 (reserved, 0)
//   payload   u64 byte length
//   checksum  u64 Checksum64 of the payload
//   <payload>     varint entry count, then per entry:
//                   u64 doc_fp, u64 query_fp, varint bundle bytes
constexpr char kIndexMagic[8] = {'S', 'L', 'P', 'S', 'P', 'I', 'X', '\n'};
constexpr uint32_t kIndexVersion = 1;
constexpr size_t kIndexHeaderSize = 8 + 4 + 4 + 8 + 8;

/// Puts between index flushes. Amortizes the O(entries) rewrite: the index
/// only saves a restart stat walk, so a slightly stale one (caught by the
/// name comparison at Open) costs nothing but that fallback walk.
constexpr uint64_t kIndexFlushInterval = 64;

struct IndexEntry {
  uint64_t doc_fp = 0;
  uint64_t query_fp = 0;
  uint64_t bytes = 0;
};

/// Strictly-validated parse; nullopt on any corruption (the caller then
/// falls back to the stat walk — a bad index is never an error).
std::optional<std::vector<IndexEntry>> ParseIndex(const std::string& bytes) {
  const uint8_t* data = reinterpret_cast<const uint8_t*>(bytes.data());
  if (bytes.size() < kIndexHeaderSize) return std::nullopt;
  if (std::memcmp(data, kIndexMagic, sizeof(kIndexMagic)) != 0) {
    return std::nullopt;
  }
  BundleReader header(data + sizeof(kIndexMagic),
                      kIndexHeaderSize - sizeof(kIndexMagic));
  uint32_t version = 0, flags = 0;
  uint64_t payload_size = 0, checksum = 0;
  Status st = header.U32(&version);
  if (st.ok()) st = header.U32(&flags);
  if (st.ok()) st = header.U64(&payload_size);
  if (st.ok()) st = header.U64(&checksum);
  if (!st.ok() || version != kIndexVersion) return std::nullopt;
  if (payload_size != bytes.size() - kIndexHeaderSize) return std::nullopt;
  const uint8_t* payload = data + kIndexHeaderSize;
  if (Checksum64(payload, payload_size) != checksum) return std::nullopt;

  BundleReader r(payload, payload_size);
  uint64_t count = 0;
  if (!r.Varint(&count).ok() || count > r.remaining()) return std::nullopt;
  std::vector<IndexEntry> entries;
  entries.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    IndexEntry e;
    st = r.U64(&e.doc_fp);
    if (st.ok()) st = r.U64(&e.query_fp);
    if (st.ok()) st = r.Varint(&e.bytes);
    if (!st.ok()) return std::nullopt;
    entries.push_back(e);
  }
  if (!r.AtEnd()) return std::nullopt;
  return entries;
}

}  // namespace

Result<std::unique_ptr<SpillStore>> SpillStore::Open(Options opts) {
  if (opts.directory.empty()) {
    return Status::InvalidArgument("spill directory must not be empty");
  }
  std::error_code ec;
  fs::create_directories(opts.directory, ec);
  if (ec || !fs::is_directory(opts.directory)) {
    return Status::InvalidArgument("cannot create spill directory " +
                                   opts.directory);
  }

  std::unique_ptr<SpillStore> store(new SpillStore(std::move(opts)));

  // Fast path: a previous process left a spill.index. Validate it against
  // the directory's *names* (one readdir, no per-file stat — the point of
  // the index on a 10k-bundle directory) and adopt its LRU order and
  // sizes on an exact match.
  {
    std::unordered_set<std::string> on_disk;
    bool listed = true;
    for (const fs::directory_entry& entry :
         fs::directory_iterator(store->dir_, ec)) {
      uint64_t doc_fp = 0, query_fp = 0;
      const std::string name = entry.path().filename().string();
      if (ParseSpillFileName(name, &doc_fp, &query_fp)) on_disk.insert(name);
    }
    if (ec) listed = false;

    std::optional<std::vector<IndexEntry>> index;
    {
      std::ifstream in(store->dir_ + "/" + kSpillIndexFileName,
                       std::ios::binary);
      if (in) {
        std::ostringstream buf;
        buf << in.rdbuf();
        if (!in.bad()) index = ParseIndex(std::move(buf).str());
      }
    }
    bool matches = listed && index && index->size() == on_disk.size();
    if (matches) {
      std::unordered_set<std::string> recorded;
      recorded.reserve(index->size());
      for (const IndexEntry& e : *index) {
        const std::string name = SpillFileName(e.doc_fp, e.query_fp);
        // A duplicate key or a name the directory lacks means the index
        // is stale (crash between a delete and the next flush): walk.
        if (!recorded.insert(name).second || on_disk.count(name) == 0) {
          matches = false;
          break;
        }
      }
    }
    if (matches) {
      util::MutexLock lock(&store->mu_);
      // Index order is MRU-first; append to keep front = most recent.
      for (const IndexEntry& e : *index) {
        store->lru_.push_back(
            Entry{Key{e.doc_fp, e.query_fp}, e.bytes, store->next_gen_++});
        store->index_[Key{e.doc_fp, e.query_fp}] = std::prev(store->lru_.end());
        store->bytes_ += e.bytes;
      }
      store->warmed_from_index_ = true;
      store->ReclaimOverBudgetLocked();
      return store;
    }
  }

  // Index what a previous process left behind, oldest-modified first, so the
  // scan ends with the newest bundles at the LRU front.
  struct Found {
    fs::file_time_type mtime;
    Key key;
    uint64_t bytes = 0;
  };
  std::vector<Found> found;
  for (const fs::directory_entry& entry : fs::directory_iterator(store->dir_, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    Key key;
    if (!ParseSpillFileName(entry.path().filename().string(), &key.doc_fp,
                            &key.query_fp)) {
      continue;  // not ours (tolerate stray files, in-flight .tmp writes)
    }
    std::error_code size_ec;
    const uintmax_t size = entry.file_size(size_ec);
    if (size_ec) continue;  // vanished mid-scan (shared dir); don't adopt a
                            // bogus UINT64_MAX charge that would reclaim all
    found.push_back({entry.last_write_time(ec), key, size});
  }
  std::sort(found.begin(), found.end(),
            [](const Found& a, const Found& b) { return a.mtime < b.mtime; });
  {
    // No other thread can see the store yet, but taking mu_ anyway keeps
    // the adoption inside the lock discipline the analysis checks.
    util::MutexLock lock(&store->mu_);
    for (const Found& f : found) {
      store->lru_.push_front(Entry{f.key, f.bytes, store->next_gen_++});
      store->index_[f.key] = store->lru_.begin();
      store->bytes_ += f.bytes;
    }
    store->ReclaimOverBudgetLocked();
  }
  return store;
}

SpillStore::~SpillStore() {
  util::MutexLock lock(&mu_);
  WriteIndexLocked();
}

void SpillStore::WriteIndex() {
  util::MutexLock lock(&mu_);
  WriteIndexLocked();
}

std::string SpillStore::PathFor(const Key& key) const {
  return dir_ + "/" + SpillFileName(key.doc_fp, key.query_fp);
}

void SpillStore::WriteIndexLocked() {
  mu_.AssertHeld();
  BundleWriter payload;
  payload.Varint(lru_.size());
  for (const Entry& e : lru_) {  // front = MRU, serialized first
    payload.U64(e.key.doc_fp);
    payload.U64(e.key.query_fp);
    payload.Varint(e.bytes);
  }
  const std::string body = payload.TakeBuffer();
  BundleWriter out;
  out.Bytes(kIndexMagic, sizeof(kIndexMagic));
  out.U32(kIndexVersion);
  out.U32(0);
  out.U64(body.size());
  out.U64(Checksum64(reinterpret_cast<const uint8_t*>(body.data()),
                     body.size()));
  out.Bytes(body.data(), body.size());
  // Best-effort: a failed write leaves the old (or no) index, and the next
  // Open just pays the stat walk.
  const Status ignored =
      WriteFileAtomic(dir_ + "/" + kSpillIndexFileName, out.TakeBuffer());
  (void)ignored;
  dirty_puts_ = 0;
  ++index_writes_;
}

Status SpillStore::Put(uint64_t doc_fp, uint64_t query_fp,
                       const std::string& image) {
  const Key key{doc_fp, query_fp};
  const std::string path = PathFor(key);
  Result<std::string> tmp = WriteTempFile(path, image);
  if (!tmp.ok()) return tmp.status();

  // The rename happens under mu_ so it serializes against reclamation: a
  // concurrent eviction of this key's *old* bundle can then never delete
  // the freshly-installed file.
  util::MutexLock lock(&mu_);
  std::error_code rename_ec;
  fs::rename(*tmp, path, rename_ec);
  if (rename_ec) {
    fs::remove(*tmp, rename_ec);
    return Status::InvalidArgument("cannot move bundle into place: " + path);
  }
  auto it = index_.find(key);
  if (it != index_.end()) {  // overwrote an existing bundle
    bytes_ -= it->second->bytes;
    lru_.erase(it->second);
    index_.erase(it);
  }
  lru_.push_front(Entry{key, image.size(), next_gen_++});
  index_[key] = lru_.begin();
  bytes_ += image.size();
  spilled_bytes_ += image.size();
  ReclaimOverBudgetLocked();
  if (++dirty_puts_ >= kIndexFlushInterval) WriteIndexLocked();
  return Status::OK();
}

StatePtr SpillStore::Get(uint64_t doc_fp, uint64_t query_fp,
                         api_internal::PreparedState::RechargeFn recharge) {
  const Key key{doc_fp, query_fp};
  uint64_t seen_gen = 0;
  {
    util::MutexLock lock(&mu_);
    auto it = index_.find(key);
    if (it == index_.end()) {
      ++disk_misses_;
      return nullptr;
    }
    seen_gen = it->second->gen;
    lru_.splice(lru_.begin(), lru_, it->second);  // touch
  }

  // mmap + deserialize outside the lock; reclamation racing us turns into a
  // plain miss when the open fails.
  Result<StatePtr> loaded = LoadPreparedBundleFile(PathFor(key), doc_fp,
                                                   query_fp, std::move(recharge));
  util::MutexLock lock(&mu_);
  if (loaded.ok()) {
    ++disk_hits_;
    return *loaded;
  }
  // A *corrupt* bundle is dropped so the slot stops poisoning lookups; any
  // other failure (transient open/mmap error, allocation pressure) leaves
  // the file alone — deleting a healthy bundle over a transient condition
  // would permanently discard the prepared work it holds. The generation
  // check keeps this from deleting a healthy bundle a concurrent Put
  // installed for the same key while the lock was dropped.
  if (loaded.status().code() == StatusCode::kCorruption) {
    auto it = index_.find(key);
    if (it != index_.end() && it->second->gen == seen_gen) {
      std::error_code ec;
      fs::remove(PathFor(key), ec);
      bytes_ -= it->second->bytes;
      lru_.erase(it->second);
      index_.erase(it);
    }
  }
  ++disk_misses_;
  return nullptr;
}

bool SpillStore::Contains(uint64_t doc_fp, uint64_t query_fp) const {
  util::MutexLock lock(&mu_);
  return index_.find(Key{doc_fp, query_fp}) != index_.end();
}

void SpillStore::ReclaimOverBudgetLocked() {
  mu_.AssertHeld();
  while (bytes_ > budget_ && !lru_.empty()) {
    const Entry& victim = lru_.back();
    std::error_code ec;
    fs::remove(PathFor(victim.key), ec);
    bytes_ -= victim.bytes;
    ++reclaimed_;
    index_.erase(victim.key);
    lru_.pop_back();
  }
}

SpillStore::Stats SpillStore::GetStats() const {
  util::MutexLock lock(&mu_);
  Stats stats;
  stats.disk_hits = disk_hits_;
  stats.disk_misses = disk_misses_;
  stats.spilled_bytes = spilled_bytes_;
  stats.entries = index_.size();
  stats.bytes = bytes_;
  stats.reclaimed = reclaimed_;
  stats.budget_bytes = budget_;
  stats.warmed_from_index = warmed_from_index_;
  stats.index_writes = index_writes_;
  return stats;
}

}  // namespace storage
}  // namespace slpspan
