// SpillStore — disk tier for evicted prepared states: budgeted LRU of
// spilled bundles with generation-stamped files and reclamation.
#include "storage/spill_store.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <vector>

namespace slpspan {
namespace storage {

namespace fs = std::filesystem;

Result<std::unique_ptr<SpillStore>> SpillStore::Open(Options opts) {
  if (opts.directory.empty()) {
    return Status::InvalidArgument("spill directory must not be empty");
  }
  std::error_code ec;
  fs::create_directories(opts.directory, ec);
  if (ec || !fs::is_directory(opts.directory)) {
    return Status::InvalidArgument("cannot create spill directory " +
                                   opts.directory);
  }

  std::unique_ptr<SpillStore> store(new SpillStore(std::move(opts)));

  // Index what a previous process left behind, oldest-modified first, so the
  // scan ends with the newest bundles at the LRU front.
  struct Found {
    fs::file_time_type mtime;
    Key key;
    uint64_t bytes = 0;
  };
  std::vector<Found> found;
  for (const fs::directory_entry& entry : fs::directory_iterator(store->dir_, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    Key key;
    if (!ParseSpillFileName(entry.path().filename().string(), &key.doc_fp,
                            &key.query_fp)) {
      continue;  // not ours (tolerate stray files, in-flight .tmp writes)
    }
    std::error_code size_ec;
    const uintmax_t size = entry.file_size(size_ec);
    if (size_ec) continue;  // vanished mid-scan (shared dir); don't adopt a
                            // bogus UINT64_MAX charge that would reclaim all
    found.push_back({entry.last_write_time(ec), key, size});
  }
  std::sort(found.begin(), found.end(),
            [](const Found& a, const Found& b) { return a.mtime < b.mtime; });
  {
    // No other thread can see the store yet, but taking mu_ anyway keeps
    // the adoption inside the lock discipline the analysis checks.
    util::MutexLock lock(&store->mu_);
    for (const Found& f : found) {
      store->lru_.push_front(Entry{f.key, f.bytes, store->next_gen_++});
      store->index_[f.key] = store->lru_.begin();
      store->bytes_ += f.bytes;
    }
    store->ReclaimOverBudgetLocked();
  }
  return store;
}

std::string SpillStore::PathFor(const Key& key) const {
  return dir_ + "/" + SpillFileName(key.doc_fp, key.query_fp);
}

Status SpillStore::Put(uint64_t doc_fp, uint64_t query_fp,
                       const std::string& image) {
  const Key key{doc_fp, query_fp};
  const std::string path = PathFor(key);
  Result<std::string> tmp = WriteTempFile(path, image);
  if (!tmp.ok()) return tmp.status();

  // The rename happens under mu_ so it serializes against reclamation: a
  // concurrent eviction of this key's *old* bundle can then never delete
  // the freshly-installed file.
  util::MutexLock lock(&mu_);
  std::error_code rename_ec;
  fs::rename(*tmp, path, rename_ec);
  if (rename_ec) {
    fs::remove(*tmp, rename_ec);
    return Status::InvalidArgument("cannot move bundle into place: " + path);
  }
  auto it = index_.find(key);
  if (it != index_.end()) {  // overwrote an existing bundle
    bytes_ -= it->second->bytes;
    lru_.erase(it->second);
    index_.erase(it);
  }
  lru_.push_front(Entry{key, image.size(), next_gen_++});
  index_[key] = lru_.begin();
  bytes_ += image.size();
  spilled_bytes_ += image.size();
  ReclaimOverBudgetLocked();
  return Status::OK();
}

StatePtr SpillStore::Get(uint64_t doc_fp, uint64_t query_fp,
                         api_internal::PreparedState::RechargeFn recharge) {
  const Key key{doc_fp, query_fp};
  uint64_t seen_gen = 0;
  {
    util::MutexLock lock(&mu_);
    auto it = index_.find(key);
    if (it == index_.end()) {
      ++disk_misses_;
      return nullptr;
    }
    seen_gen = it->second->gen;
    lru_.splice(lru_.begin(), lru_, it->second);  // touch
  }

  // mmap + deserialize outside the lock; reclamation racing us turns into a
  // plain miss when the open fails.
  Result<StatePtr> loaded = LoadPreparedBundleFile(PathFor(key), doc_fp,
                                                   query_fp, std::move(recharge));
  util::MutexLock lock(&mu_);
  if (loaded.ok()) {
    ++disk_hits_;
    return *loaded;
  }
  // A *corrupt* bundle is dropped so the slot stops poisoning lookups; any
  // other failure (transient open/mmap error, allocation pressure) leaves
  // the file alone — deleting a healthy bundle over a transient condition
  // would permanently discard the prepared work it holds. The generation
  // check keeps this from deleting a healthy bundle a concurrent Put
  // installed for the same key while the lock was dropped.
  if (loaded.status().code() == StatusCode::kCorruption) {
    auto it = index_.find(key);
    if (it != index_.end() && it->second->gen == seen_gen) {
      std::error_code ec;
      fs::remove(PathFor(key), ec);
      bytes_ -= it->second->bytes;
      lru_.erase(it->second);
      index_.erase(it);
    }
  }
  ++disk_misses_;
  return nullptr;
}

bool SpillStore::Contains(uint64_t doc_fp, uint64_t query_fp) const {
  util::MutexLock lock(&mu_);
  return index_.find(Key{doc_fp, query_fp}) != index_.end();
}

void SpillStore::ReclaimOverBudgetLocked() {
  mu_.AssertHeld();
  while (bytes_ > budget_ && !lru_.empty()) {
    const Entry& victim = lru_.back();
    std::error_code ec;
    fs::remove(PathFor(victim.key), ec);
    bytes_ -= victim.bytes;
    ++reclaimed_;
    index_.erase(victim.key);
    lru_.pop_back();
  }
}

SpillStore::Stats SpillStore::GetStats() const {
  util::MutexLock lock(&mu_);
  Stats stats;
  stats.disk_hits = disk_hits_;
  stats.disk_misses = disk_misses_;
  stats.spilled_bytes = spilled_bytes_;
  stats.entries = index_.size();
  stats.bytes = bytes_;
  stats.reclaimed = reclaimed_;
  stats.budget_bytes = budget_;
  return stats;
}

}  // namespace storage
}  // namespace slpspan
