// Disk spill tier under the runtime prepared-state cache.
//
// A SpillStore owns one directory of prepared bundles (.prep files named by
// content fingerprints, see prepared_bundle.h) with its own byte budget and
// LRU reclamation: when the directory exceeds the budget, the
// least-recently-touched bundles are deleted. The budget is charged with
// each bundle's *encoded* on-disk size (image.size() as serialized, not
// the in-RAM table footprint), so the v2 codec layer
// (docs/STORAGE_CODECS.md) directly admits more bundles under the same
// budget. Opening a store scans the
// directory, so spilled preparation work survives process restarts — and
// bundles exported with Document::SavePrepared under the canonical name
// pre-warm a fleet.
//
// To keep restarts cheap on large directories, the store periodically
// writes a checksummed "spill.index" file recording its LRU order and
// sizes. Open validates the index against the directory's *names* only —
// one readdir, no per-file stat — and adopts it on an exact match; a
// missing, corrupt, or stale index falls back to the full stat walk
// (mtimes approximate the lost LRU order). The index is a warm-start
// hint, never a source of truth: every divergence is detected by the name
// comparison except a same-name overwrite after the last flush, which can
// leave a stale byte size until the entry is next written or reclaimed.
//
// Thread-safe. Lookups copy the entry's path and run the mmap + deserialize
// outside the store lock, so concurrent misses on different keys do not
// serialize; a file reclaimed mid-lookup simply degrades into a miss.
// Corrupt or stale bundles are deleted on sight and reported as misses —
// never as errors, and never by crashing (the deserializer is strictly
// bounds-checked).

#ifndef SLPSPAN_STORAGE_SPILL_STORE_H_
#define SLPSPAN_STORAGE_SPILL_STORE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>

#include "storage/prepared_bundle.h"
#include "util/mutex.h"
#include "util/status.h"

namespace slpspan {
namespace storage {

class SpillStore {
 public:
  struct Options {
    std::string directory;
    uint64_t byte_budget = uint64_t{4} << 30;
  };

  /// Creates the directory if needed and indexes the bundles already in it
  /// (oldest-modified = least recently used). Fails with kInvalidArgument
  /// when the directory cannot be created.
  static Result<std::unique_ptr<SpillStore>> Open(Options opts);

  /// Flushes a final index so the next Open warms without a stat walk.
  ~SpillStore();

  /// Writes the warm-start index now. Called by the runtime's clean
  /// shutdown hook (Runtime::FlushSpill) — the cache is a leaked
  /// singleton, so the destructor flush only covers store replacement.
  void WriteIndex();

  /// Writes a sealed bundle image for (doc_fp, query_fp) — atomic
  /// temp+rename — then reclaims least-recently-used bundles until the
  /// directory fits the budget again (which may reclaim the new bundle
  /// itself if it alone exceeds the budget).
  Status Put(uint64_t doc_fp, uint64_t query_fp, const std::string& image);

  /// Loads the bundle for (doc_fp, query_fp); null on miss. A file that
  /// fails validation is deleted and counts as a miss.
  StatePtr Get(uint64_t doc_fp, uint64_t query_fp,
               api_internal::PreparedState::RechargeFn recharge);

  bool Contains(uint64_t doc_fp, uint64_t query_fp) const;

  struct Stats {
    uint64_t disk_hits = 0;      ///< lookups served from a bundle
    uint64_t disk_misses = 0;    ///< lookups that fell through to preparation
    uint64_t spilled_bytes = 0;  ///< cumulative bundle bytes written
    uint64_t entries = 0;        ///< bundles currently on disk
    uint64_t bytes = 0;          ///< bundle bytes currently on disk
    uint64_t reclaimed = 0;      ///< bundles deleted to respect the budget
    uint64_t budget_bytes = 0;
    bool warmed_from_index = false;  ///< Open adopted spill.index (no stats)
    uint64_t index_writes = 0;       ///< spill.index flushes so far
  };
  Stats GetStats() const;

  const std::string& directory() const { return dir_; }

 private:
  struct Key {
    uint64_t doc_fp = 0;
    uint64_t query_fp = 0;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      uint64_t h = k.doc_fp * 0x9E3779B97F4A7C15ull;
      h ^= k.query_fp * 0xC2B2AE3D27D4EB4Full;
      return static_cast<size_t>(h ^ (h >> 32));
    }
  };
  struct Entry {
    Key key;
    uint64_t bytes = 0;
    uint64_t gen = 0;  ///< bumped by every (re)index; guards stale deletes
  };

  explicit SpillStore(Options opts)
      : dir_(std::move(opts.directory)), budget_(opts.byte_budget) {}

  std::string PathFor(const Key& key) const;

  /// Deletes LRU-tail bundles until the directory fits the budget.
  void ReclaimOverBudgetLocked() REQUIRES(mu_);

  /// Serializes the LRU (MRU first) into spill.index, atomically.
  void WriteIndexLocked() REQUIRES(mu_);

  const std::string dir_;
  const uint64_t budget_;

  mutable util::Mutex mu_;
  std::list<Entry> lru_ GUARDED_BY(mu_);  // front = most recently used
  std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> index_
      GUARDED_BY(mu_);
  uint64_t next_gen_ GUARDED_BY(mu_) = 1;
  uint64_t bytes_ GUARDED_BY(mu_) = 0;
  uint64_t disk_hits_ GUARDED_BY(mu_) = 0;
  uint64_t disk_misses_ GUARDED_BY(mu_) = 0;
  uint64_t spilled_bytes_ GUARDED_BY(mu_) = 0;
  uint64_t reclaimed_ GUARDED_BY(mu_) = 0;
  uint64_t dirty_puts_ GUARDED_BY(mu_) = 0;  ///< Puts since last index flush
  uint64_t index_writes_ GUARDED_BY(mu_) = 0;
  bool warmed_from_index_ GUARDED_BY(mu_) = false;
};

/// Name of the warm-start index file inside a spill directory.
inline constexpr char kSpillIndexFileName[] = "spill.index";

}  // namespace storage
}  // namespace slpspan

#endif  // SLPSPAN_STORAGE_SPILL_STORE_H_
