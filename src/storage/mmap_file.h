// Read-only memory-mapped file (POSIX). Bundles are opened through this so
// a warm-from-disk load never copies the file through a userspace read
// buffer: pages are faulted in on demand while the deserializer walks the
// mapping, and the mapping is released as soon as the bundle's sections are
// materialized.

#ifndef SLPSPAN_STORAGE_MMAP_FILE_H_
#define SLPSPAN_STORAGE_MMAP_FILE_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/status.h"

namespace slpspan {
namespace storage {

class MmapFile {
 public:
  /// Maps `path` read-only. Missing/unreadable files are kInvalidArgument;
  /// an empty file is kCorruption (no valid bundle is empty).
  static Result<MmapFile> Open(const std::string& path);

  MmapFile(MmapFile&& other) noexcept { *this = std::move(other); }
  MmapFile& operator=(MmapFile&& other) noexcept;
  ~MmapFile();

  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }

 private:
  MmapFile() = default;

  uint8_t* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace storage
}  // namespace slpspan

#endif  // SLPSPAN_STORAGE_MMAP_FILE_H_
