// Prepared-state bundles: write a PreparedState to disk and load it back,
// optionally mmap-backed, with document/query fingerprint verification.
//
// Two payload layouts share this file: format v1 (raw sections, still
// written under BundleCodec::kV1 and readable forever) and format v2,
// whose sections route their integer streams through the codec layer
// (src/storage/codec/) behind per-section tags. See docs/STORAGE_CODECS.md
// for the byte-level v2 map.
#include "storage/prepared_bundle.h"

#include <unistd.h>

#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <new>
#include <utility>
#include <vector>

#include "core/count.h"
#include "core/tables.h"
#include "slp/slp.h"
#include "storage/bundle_format.h"
#include "storage/codec/codec.h"
#include "storage/mmap_file.h"

namespace slpspan {
namespace storage {

namespace {

using codec::ReadTaggedU64s;
using codec::StreamKind;
using codec::WriteTaggedU64s;

// Per-matrix / per-grid layout tags. kDense/kSparse are the v1 raw layouts
// (still chosen by v2 writers when they win on size); the coded layouts
// wrap their streams in codec tags and appear in v2 bundles only.
constexpr uint8_t kDense = 0;
constexpr uint8_t kSparse = 1;
constexpr uint8_t kDenseCoded = 2;
constexpr uint8_t kSparseCoded = 3;

// Grammar-section tags (v2 only; v1 has no tag byte).
constexpr uint8_t kGrammarRaw = 0;
constexpr uint8_t kGrammarCompact = 1;

// ------------------------------------------------------------- grammar ----

void WriteGrammar(const Slp& slp, BundleWriter* w) {
  w->U32(slp.NumNonTerminals());
  w->U32(slp.root());
  for (NtId a = 0; a < slp.NumNonTerminals(); ++a) {
    if (slp.IsLeaf(a)) {
      w->U32(slp.LeafSymbol(a));
      w->U32(kInvalidNt);
    } else {
      w->U32(slp.Left(a));
      w->U32(slp.Right(a));
    }
  }
}

Result<Slp> ReadGrammar(BundleReader* r) {
  uint32_t num_nts = 0, root = 0;
  Status st = r->U32(&num_nts);
  if (st.ok()) st = r->U32(&root);
  if (!st.ok()) return st;
  if (num_nts == 0) return Status::Corruption("bundle grammar is empty");
  if (r->remaining() < static_cast<size_t>(num_nts) * 8) {
    return Status::Corruption("truncated bundle grammar");
  }
  std::vector<std::pair<uint32_t, NtId>> rules;
  rules.reserve(num_nts);
  for (uint32_t a = 0; a < num_nts; ++a) {
    uint32_t left = 0, right = 0;
    (void)r->U32(&left);
    (void)r->U32(&right);
    rules.emplace_back(left, right);
  }
  return Slp::FromRules(rules, root);
}

// Compact grammar (Takasaka & I spirit): the SLP is topologically numbered
// — both children of an inner non-terminal have strictly smaller ids — so
// a rule a -> (left, right) stores the positive deltas a-left and a-right
// as varints, and a leaf bitmap plus varint terminal symbols covers the
// rest. Real grammars reference recent non-terminals constantly, so the
// deltas land in one or two bytes instead of v1's fixed eight per rule.
void WriteGrammarCompact(const Slp& slp, BundleWriter* w) {
  const uint32_t n = slp.NumNonTerminals();
  w->Varint(n);
  w->Varint(slp.root());
  std::vector<uint8_t> leaf_bits((n + 7) / 8, 0);
  for (NtId a = 0; a < n; ++a) {
    if (slp.IsLeaf(a)) leaf_bits[a / 8] |= static_cast<uint8_t>(1u << (a % 8));
  }
  w->Bytes(leaf_bits.data(), leaf_bits.size());
  for (NtId a = 0; a < n; ++a) {
    if (slp.IsLeaf(a)) {
      w->Varint(slp.LeafSymbol(a));
    } else {
      w->Varint(a - slp.Left(a));
      w->Varint(a - slp.Right(a));
    }
  }
}

Result<Slp> ReadGrammarCompact(BundleReader* r) {
  uint64_t num_nts = 0, root = 0;
  Status st = r->Varint(&num_nts);
  if (st.ok()) st = r->Varint(&root);
  if (!st.ok()) return st;
  if (num_nts == 0) return Status::Corruption("bundle grammar is empty");
  if (num_nts > 0xFFFFFFFFull || root > 0xFFFFFFFFull) {
    return Status::Corruption("bundle grammar id out of range");
  }
  const uint32_t n = static_cast<uint32_t>(num_nts);
  const size_t bitmap_bytes = (static_cast<size_t>(n) + 7) / 8;
  if (r->remaining() < bitmap_bytes) {
    return Status::Corruption("truncated bundle grammar");
  }
  const uint8_t* leaf_bits = r->cursor();
  (void)r->Skip(bitmap_bytes);
  std::vector<std::pair<uint32_t, NtId>> rules;
  rules.reserve(n);
  for (uint32_t a = 0; a < n; ++a) {
    if ((leaf_bits[a / 8] >> (a % 8)) & 1) {
      uint64_t symbol = 0;
      st = r->Varint(&symbol);
      if (!st.ok()) return st;
      if (symbol > 0xFFFFFFFFull) {
        return Status::Corruption("bundle grammar symbol out of range");
      }
      rules.emplace_back(static_cast<uint32_t>(symbol), kInvalidNt);
    } else {
      uint64_t dl = 0, dr = 0;
      st = r->Varint(&dl);
      if (st.ok()) st = r->Varint(&dr);
      if (!st.ok()) return st;
      // Topological numbering: children are strictly smaller, so both
      // deltas are in [1, a].
      if (dl == 0 || dl > a || dr == 0 || dr > a) {
        return Status::Corruption("bundle grammar child delta out of range");
      }
      rules.emplace_back(a - static_cast<uint32_t>(dl),
                         a - static_cast<uint32_t>(dr));
    }
  }
  return Slp::FromRules(rules, static_cast<uint32_t>(root));
}

void WriteGrammarV2(const Slp& slp, BundleCodec choice, BundleWriter* w) {
  if (choice == BundleCodec::kRaw) {
    w->U8(kGrammarRaw);
    WriteGrammar(slp, w);
  } else {
    w->U8(kGrammarCompact);
    WriteGrammarCompact(slp, w);
  }
}

Result<Slp> ReadGrammarV2(BundleReader* r) {
  uint8_t tag = 0;
  Status st = r->U8(&tag);
  if (!st.ok()) return st;
  if (tag == kGrammarRaw) return ReadGrammar(r);
  if (tag != kGrammarCompact) {
    return Status::Corruption("unknown grammar section tag");
  }
  return ReadGrammarCompact(r);
}

// ------------------------------------------------------------ matrices ----

// Serialization iterates logical words only: the in-memory rows are padded
// to the kernel layer's 32-byte stride, but the .prep byte format stays
// padding-independent (bundles written before and after the SIMD layout
// change are byte-identical).
void WriteMatrix(const BoolMatrix& m, uint32_t q, BundleWriter* w) {
  const uint32_t words = m.logical_words_per_row();
  const size_t total_words = static_cast<size_t>(q) * words;
  size_t nonzero = 0;
  for (uint32_t i = 0; i < q; ++i) {
    const uint64_t* row = m.Row(i);
    for (uint32_t k = 0; k < words; ++k) nonzero += row[k] != 0;
  }
  // Sparse entry = index u32 + bits u64; dense word = bits u64.
  if (nonzero * 12 < total_words * 8) {
    w->U8(kSparse);
    w->U32(static_cast<uint32_t>(nonzero));
    for (uint32_t i = 0; i < q; ++i) {
      const uint64_t* row = m.Row(i);
      for (uint32_t k = 0; k < words; ++k) {
        if (row[k] == 0) continue;
        w->U32(i * words + k);
        w->U64(row[k]);
      }
    }
  } else {
    w->U8(kDense);
    for (uint32_t i = 0; i < q; ++i) {
      w->Bytes(m.Row(i), static_cast<size_t>(words) * 8);
    }
  }
}

// v2 matrices pick the smaller of two codec-backed layouts: dense-coded
// (every logical word through one tagged stream) or sparse-coded (the
// strictly increasing non-zero word positions — Elias-Fano territory —
// plus the non-zero words themselves).
void WriteMatrixV2(const BoolMatrix& m, uint32_t q, BundleCodec choice,
                   BundleWriter* w) {
  if (choice == BundleCodec::kRaw) {
    WriteMatrix(m, q, w);
    return;
  }
  const uint32_t words = m.logical_words_per_row();
  std::vector<uint64_t> all;
  all.reserve(static_cast<size_t>(q) * words);
  std::vector<uint64_t> positions, bits;
  for (uint32_t i = 0; i < q; ++i) {
    const uint64_t* row = m.Row(i);
    for (uint32_t k = 0; k < words; ++k) {
      all.push_back(row[k]);
      if (row[k] != 0) {
        positions.push_back(static_cast<uint64_t>(i) * words + k);
        bits.push_back(row[k]);
      }
    }
  }
  BundleWriter dense;
  WriteTaggedU64s(all.data(), all.size(), choice, StreamKind::kGeneral,
                  &dense);
  BundleWriter sparse;
  sparse.U32(static_cast<uint32_t>(positions.size()));
  WriteTaggedU64s(positions.data(), positions.size(), choice,
                  StreamKind::kMonotone, &sparse);
  WriteTaggedU64s(bits.data(), bits.size(), choice, StreamKind::kGeneral,
                  &sparse);
  if (sparse.buffer().size() < dense.buffer().size()) {
    w->U8(kSparseCoded);
    w->Bytes(sparse.buffer().data(), sparse.buffer().size());
  } else {
    w->U8(kDenseCoded);
    w->Bytes(dense.buffer().data(), dense.buffer().size());
  }
}

Status ReadMatrix(BundleReader* r, uint32_t q, bool allow_coded,
                  BoolMatrix* out) {
  uint8_t format = 0;
  Status st = r->U8(&format);
  if (!st.ok()) return st;
  const uint32_t words = (q + 63) / 64;
  const size_t total_words = static_cast<size_t>(q) * words;
  if (format == kDense) {
    if (r->remaining() < total_words * 8) {
      return Status::Corruption("truncated dense matrix");
    }
    *out = BoolMatrix(q);
    for (uint32_t i = 0; i < q; ++i) {
      (void)r->Bytes(out->MutableRow(i), static_cast<size_t>(words) * 8);
    }
    // Pool adoption: loaded matrices join the multiply fast path with the
    // same aligned layout and frozen density profile as built ones.
    out->CacheRowPopcounts();
    return Status::OK();
  }
  if (format == kSparse) {
    uint32_t nonzero = 0;
    st = r->U32(&nonzero);
    if (!st.ok()) return st;
    if (r->remaining() < static_cast<size_t>(nonzero) * 12) {
      return Status::Corruption("truncated sparse matrix");
    }
    *out = BoolMatrix(q);
    for (uint32_t e = 0; e < nonzero; ++e) {
      uint32_t index = 0;
      uint64_t bits = 0;
      (void)r->U32(&index);
      (void)r->U64(&bits);
      if (index >= total_words) {
        return Status::Corruption("sparse matrix word index out of range");
      }
      out->MutableRow(index / words)[index % words] = bits;
    }
    out->CacheRowPopcounts();
    return Status::OK();
  }
  if (!allow_coded || (format != kDenseCoded && format != kSparseCoded)) {
    return Status::Corruption("unknown matrix format");
  }
  if (format == kDenseCoded) {
    std::vector<uint64_t> all;
    st = ReadTaggedU64s(r, total_words, &all);
    if (!st.ok()) return st;
    *out = BoolMatrix(q);
    for (uint32_t i = 0; i < q; ++i) {
      uint64_t* row = out->MutableRow(i);
      for (uint32_t k = 0; k < words; ++k) {
        row[k] = all[static_cast<size_t>(i) * words + k];
      }
    }
    out->CacheRowPopcounts();
    return Status::OK();
  }
  uint32_t nonzero = 0;
  st = r->U32(&nonzero);
  if (!st.ok()) return st;
  if (nonzero > total_words) {
    return Status::Corruption("sparse matrix overfull");
  }
  std::vector<uint64_t> positions, bits;
  st = ReadTaggedU64s(r, nonzero, &positions);
  if (st.ok()) st = ReadTaggedU64s(r, nonzero, &bits);
  if (!st.ok()) return st;
  *out = BoolMatrix(q);
  for (uint32_t e = 0; e < nonzero; ++e) {
    const uint64_t index = positions[e];
    if (index >= total_words) {
      return Status::Corruption("sparse matrix word index out of range");
    }
    out->MutableRow(static_cast<uint32_t>(index / words))[index % words] =
        bits[e];
  }
  out->CacheRowPopcounts();
  return Status::OK();
}

// The U/W matrices repeat massively across non-terminals, and EvalTables
// already stores them hash-consed (a pool of distinct matrices plus two
// per-nt indexes). The bundle mirrors that representation 1:1 — an
// order-of-magnitude smaller file, and deserialization adopts the pool
// without any per-nt matrix copies.

void WriteMatrixPool(const EvalTables& tables, uint32_t q, BundleWriter* w) {
  const std::vector<BoolMatrix>& pool = tables.pool();
  w->U32(static_cast<uint32_t>(pool.size()));
  for (const BoolMatrix& m : pool) WriteMatrix(m, q, w);
  const bool narrow = pool.size() <= 0xFFFF;
  for (const std::vector<uint32_t>* indexes :
       {&tables.u_indexes(), &tables.w_indexes()}) {
    for (const uint32_t idx : *indexes) {
      if (narrow) {
        w->U16(static_cast<uint16_t>(idx));
      } else {
        w->U32(idx);
      }
    }
  }
}

// v2: the per-nt u/w index arrays — 2n values in [0, pool) — go through
// one tagged stream; bitpacking takes them to ~log2(pool) bits each
// instead of 16 or 32.
void WriteMatrixPoolV2(const EvalTables& tables, uint32_t q,
                       BundleCodec choice, BundleWriter* w) {
  const std::vector<BoolMatrix>& pool = tables.pool();
  w->U32(static_cast<uint32_t>(pool.size()));
  for (const BoolMatrix& m : pool) WriteMatrixV2(m, q, choice, w);
  std::vector<uint64_t> indexes;
  indexes.reserve(tables.u_indexes().size() + tables.w_indexes().size());
  for (const uint32_t idx : tables.u_indexes()) indexes.push_back(idx);
  for (const uint32_t idx : tables.w_indexes()) indexes.push_back(idx);
  WriteTaggedU64s(indexes.data(), indexes.size(), choice,
                  StreamKind::kGeneral, w);
}

Status ReadMatrixPool(BundleReader* r, uint32_t version, uint32_t n,
                      uint32_t q, std::vector<BoolMatrix>* pool,
                      std::vector<uint32_t>* u_idx,
                      std::vector<uint32_t>* w_idx) {
  uint32_t num_unique = 0;
  Status st = r->U32(&num_unique);
  if (!st.ok()) return st;
  if (num_unique == 0) return Status::Corruption("empty matrix pool");
  if (num_unique > r->remaining()) {  // every matrix takes >= 1 byte
    return Status::Corruption("truncated matrix pool");
  }
  const bool coded = version >= 2;
  pool->resize(num_unique);
  for (uint32_t m = 0; m < num_unique; ++m) {
    st = ReadMatrix(r, q, coded, &(*pool)[m]);
    if (!st.ok()) return st;
  }
  if (coded) {
    std::vector<uint64_t> indexes;
    st = ReadTaggedU64s(r, static_cast<size_t>(n) * 2, &indexes);
    if (!st.ok()) return st;
    u_idx->resize(n);
    w_idx->resize(n);
    for (uint32_t a = 0; a < 2 * n; ++a) {
      if (indexes[a] >= num_unique) {
        return Status::Corruption("matrix index out of range");
      }
      (a < n ? (*u_idx)[a] : (*w_idx)[a - n]) =
          static_cast<uint32_t>(indexes[a]);
    }
    return Status::OK();
  }
  const bool narrow = num_unique <= 0xFFFF;
  if (r->remaining() < static_cast<size_t>(n) * 2 * (narrow ? 2 : 4)) {
    return Status::Corruption("truncated matrix index table");
  }
  for (std::vector<uint32_t>* dest : {u_idx, w_idx}) {
    dest->resize(n);
    for (uint32_t a = 0; a < n; ++a) {
      uint32_t idx = 0;
      if (narrow) {
        uint16_t idx16 = 0;
        (void)r->U16(&idx16);
        idx = idx16;
      } else {
        (void)r->U32(&idx);
      }
      if (idx >= num_unique) {
        return Status::Corruption("matrix index out of range");
      }
      (*dest)[a] = idx;
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------- leaf cells ----

using LeafGrid = std::vector<std::vector<MarkerMask>>;

void WriteLeafGrid(const Slp& slp, const EvalTables& tables, NtId leaf,
                   uint32_t q, BundleWriter* w) {
  (void)slp;
  const size_t cells = static_cast<size_t>(q) * q;
  size_t nonempty = 0, total_masks = 0;
  for (StateId i = 0; i < q; ++i) {
    for (StateId j = 0; j < q; ++j) {
      const auto& cell = tables.LeafCell(leaf, i, j);
      nonempty += !cell.empty();
      total_masks += cell.size();
    }
  }
  // Dense cost: len u32 per cell; sparse cost: cell-index u32 + len u32 per
  // non-empty cell. The mask payload is identical either way.
  if (nonempty * 8 < cells * 4) {
    w->U8(kSparse);
    w->U32(static_cast<uint32_t>(nonempty));
    for (StateId i = 0; i < q; ++i) {
      for (StateId j = 0; j < q; ++j) {
        const auto& cell = tables.LeafCell(leaf, i, j);
        if (cell.empty()) continue;
        w->U32(i * q + j);
        w->U32(static_cast<uint32_t>(cell.size()));
        for (const MarkerMask mask : cell) w->U64(mask);
      }
    }
  } else {
    w->U8(kDense);
    for (StateId i = 0; i < q; ++i) {
      for (StateId j = 0; j < q; ++j) {
        const auto& cell = tables.LeafCell(leaf, i, j);
        w->U32(static_cast<uint32_t>(cell.size()));
        for (const MarkerMask mask : cell) w->U64(mask);
      }
    }
  }
}

// v2 grids mirror the matrix layout choice: dense-coded streams every
// cell's length (mostly zero -> bitpack collapses them), sparse-coded
// streams the non-empty cell positions (monotone -> Elias-Fano) plus their
// lengths; the mask payload rides one tagged stream either way.
void WriteLeafGridV2(const Slp& slp, const EvalTables& tables, NtId leaf,
                     uint32_t q, BundleCodec choice, BundleWriter* w) {
  if (choice == BundleCodec::kRaw) {
    WriteLeafGrid(slp, tables, leaf, q, w);
    return;
  }
  std::vector<uint64_t> lens, masks, positions, sparse_lens;
  lens.reserve(static_cast<size_t>(q) * q);
  for (StateId i = 0; i < q; ++i) {
    for (StateId j = 0; j < q; ++j) {
      const auto& cell = tables.LeafCell(leaf, i, j);
      lens.push_back(cell.size());
      if (!cell.empty()) {
        positions.push_back(static_cast<uint64_t>(i) * q + j);
        sparse_lens.push_back(cell.size());
      }
      for (const MarkerMask mask : cell) masks.push_back(mask);
    }
  }
  BundleWriter dense;
  WriteTaggedU64s(lens.data(), lens.size(), choice, StreamKind::kGeneral,
                  &dense);
  BundleWriter sparse;
  sparse.U32(static_cast<uint32_t>(positions.size()));
  WriteTaggedU64s(positions.data(), positions.size(), choice,
                  StreamKind::kMonotone, &sparse);
  WriteTaggedU64s(sparse_lens.data(), sparse_lens.size(), choice,
                  StreamKind::kGeneral, &sparse);
  if (sparse.buffer().size() < dense.buffer().size()) {
    w->U8(kSparseCoded);
    w->Bytes(sparse.buffer().data(), sparse.buffer().size());
  } else {
    w->U8(kDenseCoded);
    w->Bytes(dense.buffer().data(), dense.buffer().size());
  }
  WriteTaggedU64s(masks.data(), masks.size(), choice, StreamKind::kGeneral,
                  w);
}

Status ReadCellMasks(BundleReader* r, uint32_t len,
                     std::vector<MarkerMask>* cell) {
  if (r->remaining() < static_cast<size_t>(len) * 8) {
    return Status::Corruption("truncated leaf cell");
  }
  cell->resize(len);
  for (uint32_t m = 0; m < len; ++m) (void)r->U64(&(*cell)[m]);
  return Status::OK();
}

// Shared tail of the v2 grid layouts: validate the per-cell lengths, then
// decode the single mask stream and deal it out.
Status FillGridFromLens(BundleReader* r, const std::vector<uint64_t>& cells_at,
                        const std::vector<uint64_t>& lens, size_t cells,
                        LeafGrid* grid) {
  uint64_t total_masks = 0;
  for (size_t e = 0; e < lens.size(); ++e) {
    if (lens[e] > 0xFFFFFFFFull) {
      return Status::Corruption("leaf cell length out of range");
    }
    total_masks += lens[e];
    if (total_masks > (uint64_t{1} << 32)) {
      return Status::Corruption("leaf grid mask count out of range");
    }
    if (cells_at[e] >= cells) {
      return Status::Corruption("leaf cell index out of range");
    }
  }
  std::vector<uint64_t> masks;
  Status st = ReadTaggedU64s(r, static_cast<size_t>(total_masks), &masks);
  if (!st.ok()) return st;
  grid->resize(cells);
  size_t offset = 0;
  for (size_t e = 0; e < lens.size(); ++e) {
    const size_t len = static_cast<size_t>(lens[e]);
    (*grid)[static_cast<size_t>(cells_at[e])].assign(
        masks.begin() + offset, masks.begin() + offset + len);
    offset += len;
  }
  return Status::OK();
}

Status ReadLeafGrid(BundleReader* r, uint32_t q, bool allow_coded,
                    LeafGrid* grid) {
  uint8_t format = 0;
  Status st = r->U8(&format);
  if (!st.ok()) return st;
  const size_t cells = static_cast<size_t>(q) * q;
  if (format == kDense) {
    if (r->remaining() < cells * 4) {
      return Status::Corruption("truncated dense leaf grid");
    }
    grid->resize(cells);
    for (size_t c = 0; c < cells; ++c) {
      uint32_t len = 0;
      st = r->U32(&len);
      if (st.ok()) st = ReadCellMasks(r, len, &(*grid)[c]);
      if (!st.ok()) return st;
    }
    return Status::OK();
  }
  if (format == kSparse) {
    uint32_t nonempty = 0;
    st = r->U32(&nonempty);
    if (!st.ok()) return st;
    if (r->remaining() < static_cast<size_t>(nonempty) * 8) {
      return Status::Corruption("truncated sparse leaf grid");
    }
    // A sparse grid materializes q×q cell vectors from almost no payload, so
    // cap the expansion factor: an honest bundle's other sections already
    // cost bytes proportional to q, making a grid thousands of times larger
    // than the whole remaining payload physically implausible — while a
    // forged q near 2^16 would otherwise demand ~100 GiB of empty vectors.
    if (cells / 1024 > r->remaining()) {
      return Status::Corruption("implausible leaf grid dimension");
    }
    grid->resize(cells);
    for (uint32_t e = 0; e < nonempty; ++e) {
      uint32_t index = 0, len = 0;
      (void)r->U32(&index);
      st = r->U32(&len);
      if (!st.ok()) return st;
      if (index >= cells) {
        return Status::Corruption("leaf cell index out of range");
      }
      st = ReadCellMasks(r, len, &(*grid)[index]);
      if (!st.ok()) return st;
    }
    return Status::OK();
  }
  if (!allow_coded || (format != kDenseCoded && format != kSparseCoded)) {
    return Status::Corruption("unknown leaf grid format");
  }
  // Same implausible-dimension cap as the raw sparse layout: every coded
  // grid still costs at least cells/128 tag-stream bytes when dense and a
  // position stream when sparse.
  if (cells / 1024 > r->remaining()) {
    return Status::Corruption("implausible leaf grid dimension");
  }
  if (format == kDenseCoded) {
    std::vector<uint64_t> lens;
    st = ReadTaggedU64s(r, cells, &lens);
    if (!st.ok()) return st;
    std::vector<uint64_t> cells_at(cells);
    for (size_t c = 0; c < cells; ++c) cells_at[c] = c;
    return FillGridFromLens(r, cells_at, lens, cells, grid);
  }
  uint32_t nonempty = 0;
  st = r->U32(&nonempty);
  if (!st.ok()) return st;
  if (nonempty > cells) {
    return Status::Corruption("leaf grid overfull");
  }
  std::vector<uint64_t> positions, lens;
  st = ReadTaggedU64s(r, nonempty, &positions);
  if (st.ok()) st = ReadTaggedU64s(r, nonempty, &lens);
  if (!st.ok()) return st;
  return FillGridFromLens(r, positions, lens, cells, grid);
}

// ------------------------------------------------------------- counter ----

// Counts are key-sorted, so keys delta-encode into 1-2 varint bytes; counts
// themselves are usually tiny. ~3 bytes per reachable triple instead of 16.
void WriteCounter(const CountTables& counter, BundleWriter* w) {
  const CountTables::Parts parts = counter.ExportParts();
  w->U64(parts.counts.size());
  uint64_t prev_key = 0;
  for (const auto& [key, count] : parts.counts) {
    w->Varint(key - prev_key);
    w->Varint(count);
    prev_key = key;
  }
  w->U32(static_cast<uint32_t>(parts.final_states.size()));
  for (const StateId s : parts.final_states) w->U32(s);
  w->U64(parts.total);
  w->U8(parts.overflow ? 1 : 0);
}

// v2: the same delta transform, but keys and counts ride two tagged
// streams (VarintGB or bitpack, whichever wins) instead of interleaved
// LEB128 — and the final states pack too.
void WriteCounterV2(const CountTables& counter, BundleCodec choice,
                    BundleWriter* w) {
  const CountTables::Parts parts = counter.ExportParts();
  w->U64(parts.counts.size());
  std::vector<uint64_t> deltas, counts;
  deltas.reserve(parts.counts.size());
  counts.reserve(parts.counts.size());
  uint64_t prev_key = 0;
  for (const auto& [key, count] : parts.counts) {
    deltas.push_back(key - prev_key);
    counts.push_back(count);
    prev_key = key;
  }
  WriteTaggedU64s(deltas.data(), deltas.size(), choice, StreamKind::kGeneral,
                  w);
  WriteTaggedU64s(counts.data(), counts.size(), choice, StreamKind::kGeneral,
                  w);
  w->U32(static_cast<uint32_t>(parts.final_states.size()));
  std::vector<uint64_t> finals(parts.final_states.begin(),
                               parts.final_states.end());
  WriteTaggedU64s(finals.data(), finals.size(), choice, StreamKind::kGeneral,
                  w);
  w->U64(parts.total);
  w->U8(parts.overflow ? 1 : 0);
}

Result<CountTables::Parts> ReadCounterParts(BundleReader* r) {
  CountTables::Parts parts;
  uint64_t num_counts = 0;
  Status st = r->U64(&num_counts);
  if (!st.ok()) return st;
  if (num_counts > r->remaining() / 2) {  // every entry takes >= 2 bytes
    return Status::Corruption("truncated counter section");
  }
  parts.counts.reserve(num_counts);
  uint64_t key = 0;
  for (uint64_t e = 0; e < num_counts; ++e) {
    uint64_t delta = 0, count = 0;
    st = r->Varint(&delta);
    if (st.ok()) st = r->Varint(&count);
    if (!st.ok()) return st;
    key += delta;
    parts.counts.emplace_back(key, count);
  }
  uint32_t num_final = 0;
  st = r->U32(&num_final);
  if (!st.ok()) return st;
  if (r->remaining() < static_cast<size_t>(num_final) * 4) {
    return Status::Corruption("truncated counter final states");
  }
  parts.final_states.resize(num_final);
  for (uint32_t e = 0; e < num_final; ++e) (void)r->U32(&parts.final_states[e]);
  uint8_t overflow = 0;
  st = r->U64(&parts.total);
  if (st.ok()) st = r->U8(&overflow);
  if (!st.ok()) return st;
  parts.overflow = overflow != 0;
  return parts;
}

Result<CountTables::Parts> ReadCounterPartsV2(BundleReader* r) {
  CountTables::Parts parts;
  uint64_t num_counts = 0;
  Status st = r->U64(&num_counts);
  if (!st.ok()) return st;
  // Each entry takes >= 1 stream byte after the densest packing; the codec
  // decoders re-check their own exact minimums.
  if (num_counts / 128 > r->remaining()) {
    return Status::Corruption("truncated counter section");
  }
  std::vector<uint64_t> deltas, counts;
  st = ReadTaggedU64s(r, static_cast<size_t>(num_counts), &deltas);
  if (st.ok()) st = ReadTaggedU64s(r, static_cast<size_t>(num_counts), &counts);
  if (!st.ok()) return st;
  parts.counts.reserve(num_counts);
  uint64_t key = 0;
  for (uint64_t e = 0; e < num_counts; ++e) {
    key += deltas[e];
    parts.counts.emplace_back(key, counts[e]);
  }
  uint32_t num_final = 0;
  st = r->U32(&num_final);
  if (!st.ok()) return st;
  std::vector<uint64_t> finals;
  st = ReadTaggedU64s(r, num_final, &finals);
  if (!st.ok()) return st;
  parts.final_states.resize(num_final);
  for (uint32_t e = 0; e < num_final; ++e) {
    if (finals[e] > 0xFFFFFFFFull) {
      return Status::Corruption("counter final state out of range");
    }
    parts.final_states[e] = static_cast<StateId>(finals[e]);
  }
  uint8_t overflow = 0;
  st = r->U64(&parts.total);
  if (st.ok()) st = r->U8(&overflow);
  if (!st.ok()) return st;
  parts.overflow = overflow != 0;
  return parts;
}

}  // namespace

// ----------------------------------------------------------- top level ----

std::string SerializePreparedState(const api_internal::PreparedState& state,
                                   uint64_t doc_fp, uint64_t query_fp,
                                   BundleCodec codec) {
  const Slp& slp = state.prepared.slp();
  const EvalTables& tables = state.prepared.tables();
  const uint32_t q = tables.q();
  const bool v1 = codec == BundleCodec::kV1;

  BundleWriter payload;
  if (v1) {
    WriteGrammar(slp, &payload);
  } else {
    WriteGrammarV2(slp, codec, &payload);
  }
  payload.U32(q);
  if (v1) {
    WriteMatrixPool(tables, q, &payload);
  } else {
    WriteMatrixPoolV2(tables, q, codec, &payload);
  }
  uint32_t num_leaves = 0;
  for (NtId a = 0; a < slp.NumNonTerminals(); ++a) num_leaves += slp.IsLeaf(a);
  payload.U32(num_leaves);
  for (NtId a = 0; a < slp.NumNonTerminals(); ++a) {
    if (!slp.IsLeaf(a)) continue;
    if (v1) {
      WriteLeafGrid(slp, tables, a, q, &payload);
    } else {
      WriteLeafGridV2(slp, tables, a, q, codec, &payload);
    }
  }

  uint32_t flags = 0;
  if (const CountTables* counter = state.CounterIfReady()) {
    flags |= kBundleFlagHasCounter;
    if (v1) {
      WriteCounter(*counter, &payload);
    } else {
      WriteCounterV2(*counter, codec, &payload);
    }
  }
  return SealBundle(v1 ? kBundleVersionV1 : kBundleVersion, flags, doc_fp,
                    query_fp, payload.TakeBuffer());
}

Result<StatePtr> DeserializePreparedState(
    const uint8_t* data, size_t size, uint64_t expected_doc_fp,
    uint64_t expected_query_fp,
    api_internal::PreparedState::RechargeFn recharge) {
  Result<BundleHeader> header = OpenBundle(data, size);
  if (!header.ok()) return header.status();
  if (header->doc_fp != expected_doc_fp) {
    return Status::InvalidArgument(
        "bundle was built for a different document (fingerprint mismatch)");
  }
  if (header->query_fp != expected_query_fp) {
    return Status::InvalidArgument(
        "bundle was built for a different query (fingerprint mismatch)");
  }

  const uint32_t version = header->version;
  const bool coded = version >= 2;
  BundleReader reader(data + kBundleHeaderSize, header->payload_size);

  Result<Slp> slp = coded ? ReadGrammarV2(&reader) : ReadGrammar(&reader);
  if (!slp.ok()) return slp.status();

  uint32_t q = 0;
  Status st = reader.U32(&q);
  if (!st.ok()) return st;
  if (q == 0 || q > 0xFFFF) {
    return Status::Corruption("bundle state count out of range");
  }
  const uint32_t n = slp->NumNonTerminals();
  std::vector<BoolMatrix> pool;
  std::vector<uint32_t> u_idx, w_idx;
  st = ReadMatrixPool(&reader, version, n, q, &pool, &u_idx, &w_idx);
  if (!st.ok()) return st;
  uint32_t num_leaves = 0;
  st = reader.U32(&num_leaves);
  if (!st.ok()) return st;
  if (num_leaves > reader.remaining()) {  // every grid takes >= 1 byte
    return Status::Corruption("truncated leaf grids");
  }
  std::vector<LeafGrid> leaf_cells(num_leaves);
  for (uint32_t l = 0; l < num_leaves; ++l) {
    st = ReadLeafGrid(&reader, q, coded, &leaf_cells[l]);
    if (!st.ok()) return st;
  }
  Result<EvalTables> tables =
      EvalTables::FromParts(*slp, q, std::move(pool), std::move(u_idx),
                            std::move(w_idx), std::move(leaf_cells));
  if (!tables.ok()) return tables.status();

  // The counter section is kept as raw bytes on the PreparedState (charged
  // to its MemoryUsage) and materialized lazily on the first
  // Count/At/Sample — it needs the query's evaluation automaton, and
  // check-only workloads never pay for it; the bytes are released once
  // parsed. The section was covered by the bundle checksum above; one that
  // still fails validation against the rebuilt tables falls back to a
  // from-scratch build.
  std::string counter_section;
  api_internal::PreparedState::CounterLoader loader;
  if ((header->flags & kBundleFlagHasCounter) != 0) {
    counter_section.assign(reinterpret_cast<const char*>(reader.cursor()),
                           reader.remaining());
    loader = [coded](const Slp& bound_slp, const Nfa& nfa,
                     const EvalTables& bound_tables,
                     const std::string& section) -> std::optional<CountTables> {
      BundleReader counter_reader(
          reinterpret_cast<const uint8_t*>(section.data()), section.size());
      Result<CountTables::Parts> parts =
          coded ? ReadCounterPartsV2(&counter_reader)
                : ReadCounterParts(&counter_reader);
      if (!parts.ok()) return std::nullopt;
      Result<CountTables> counter = CountTables::FromParts(
          bound_slp, nfa, bound_tables, std::move(parts).value());
      if (!counter.ok()) return std::nullopt;
      return std::move(counter).value();
    };
  }

  return std::make_shared<const api_internal::PreparedState>(
      PreparedDocument::FromParts(std::move(slp).value(),
                                  std::move(tables).value()),
      std::move(recharge), std::move(counter_section), std::move(loader));
}

Result<std::string> WriteTempFile(const std::string& final_path,
                                  const std::string& bytes) {
  static std::atomic<uint64_t> counter{0};
  const std::string tmp = final_path + ".tmp." + std::to_string(::getpid()) +
                          "." +
                          std::to_string(counter.fetch_add(1,
                                                           std::memory_order_relaxed));
  std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
  if (!out) return Status::InvalidArgument("cannot open for writing: " + tmp);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out) {
    std::error_code ec;
    std::filesystem::remove(tmp, ec);
    return Status::InvalidArgument("write failed: " + tmp);
  }
  return tmp;
}

Status WriteFileAtomic(const std::string& path, const std::string& bytes) {
  Result<std::string> tmp = WriteTempFile(path, bytes);
  if (!tmp.ok()) return tmp.status();
  std::error_code ec;
  std::filesystem::rename(*tmp, path, ec);
  if (ec) {
    std::filesystem::remove(*tmp, ec);
    return Status::InvalidArgument("cannot move file into place: " + path);
  }
  return Status::OK();
}

Status WritePreparedBundleFile(const std::string& path,
                               const api_internal::PreparedState& state,
                               uint64_t doc_fp, uint64_t query_fp,
                               BundleCodec codec) {
  return WriteFileAtomic(path,
                         SerializePreparedState(state, doc_fp, query_fp, codec));
}

Result<StatePtr> LoadPreparedBundleFile(
    const std::string& path, uint64_t expected_doc_fp,
    uint64_t expected_query_fp,
    api_internal::PreparedState::RechargeFn recharge) {
  Result<MmapFile> file = MmapFile::Open(path);
  if (!file.ok()) return file.status();
  try {
    return DeserializePreparedState(file->data(), file->size(),
                                    expected_doc_fp, expected_query_fp,
                                    std::move(recharge));
  } catch (const std::bad_alloc&) {
    return Status::ResourceExhausted("out of memory deserializing " + path);
  }
}

std::string SpillFileName(uint64_t doc_fp, uint64_t query_fp) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "pb-%016" PRIx64 "-%016" PRIx64 ".prep",
                doc_fp, query_fp);
  return buf;
}

bool ParseSpillFileName(const std::string& name, uint64_t* doc_fp,
                        uint64_t* query_fp) {
  if (name.size() != 3 + 16 + 1 + 16 + 5) return false;
  if (name.rfind("pb-", 0) != 0 || name[19] != '-' ||
      name.compare(36, 5, ".prep") != 0) {
    return false;
  }
  auto parse_hex = [](const std::string& s, size_t pos, uint64_t* out) {
    uint64_t v = 0;
    for (size_t i = 0; i < 16; ++i) {
      const char c = s[pos + i];
      uint64_t digit;
      if (c >= '0' && c <= '9') digit = static_cast<uint64_t>(c - '0');
      else if (c >= 'a' && c <= 'f') digit = static_cast<uint64_t>(c - 'a') + 10;
      else return false;
      v = (v << 4) | digit;
    }
    *out = v;
    return true;
  };
  return parse_hex(name, 3, doc_fp) && parse_hex(name, 20, query_fp);
}

}  // namespace storage
}  // namespace slpspan
