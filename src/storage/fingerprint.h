// Content fingerprints for the persistent prepared-state store.
//
// The runtime cache keys prepared state by process-local (document-id,
// query-id) counters, which do not survive a restart. The disk tier and
// exported bundles instead key on 64-bit *content* fingerprints: a hash of
// the grammar's rule structure for documents, and a hash of the compiled
// evaluation automaton (plus the options that shaped preparation) for
// queries. Two Documents wrapping structurally identical grammars — or two
// processes compiling the same pattern — therefore share spilled bundles.
//
// Fingerprints are identity hints, not a security boundary: bundles are
// additionally checksummed, and deserialization bounds-checks everything.

#ifndef SLPSPAN_STORAGE_FINGERPRINT_H_
#define SLPSPAN_STORAGE_FINGERPRINT_H_

#include <cstdint>

namespace slpspan {

class Slp;
class Nfa;
struct QueryOptions;

namespace storage {

/// FNV-1a-style streaming 64-bit hasher with a finalization mix.
class Fingerprinter {
 public:
  void Mix(uint64_t v) {
    h_ ^= v;
    h_ *= 0x100000001B3ull;
  }

  uint64_t Digest() const {
    uint64_t h = h_;
    h ^= h >> 33;
    h *= 0xFF51AFD7ED558CCDull;
    h ^= h >> 33;
    return h;
  }

 private:
  uint64_t h_ = 0xCBF29CE484222325ull;
};

/// Hash of the grammar's rule listing and root (never 0).
uint64_t FingerprintSlp(const Slp& slp);

/// Hash of the compiled evaluation automaton plus the preparation-shaping
/// options (never 0). Identical patterns compiled with identical options
/// fingerprint identically — the compilation pipeline is deterministic.
uint64_t FingerprintQuery(const Nfa& eval_nfa, uint32_t num_vars,
                          const QueryOptions& options);

}  // namespace storage
}  // namespace slpspan

#endif  // SLPSPAN_STORAGE_FINGERPRINT_H_
