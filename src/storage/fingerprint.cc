// Stable 64-bit fingerprints of SLPs and queries — the identity keys for
// the prepared cache and on-disk bundles.
#include "storage/fingerprint.h"

#include "slp/slp.h"
#include "slpspan/query.h"
#include "spanner/nfa.h"

namespace slpspan {
namespace storage {

uint64_t FingerprintSlp(const Slp& slp) {
  Fingerprinter fp;
  fp.Mix(0x534C5000u);  // domain tag "SLP"
  fp.Mix(slp.NumNonTerminals());
  fp.Mix(slp.root());
  for (NtId a = 0; a < slp.NumNonTerminals(); ++a) {
    if (slp.IsLeaf(a)) {
      fp.Mix(1);
      fp.Mix(slp.LeafSymbol(a));
    } else {
      fp.Mix(2);
      fp.Mix((static_cast<uint64_t>(slp.Left(a)) << 32) | slp.Right(a));
    }
  }
  const uint64_t digest = fp.Digest();
  return digest == 0 ? 1 : digest;  // 0 is reserved for "not yet computed"
}

uint64_t FingerprintQuery(const Nfa& eval_nfa, uint32_t num_vars,
                          const QueryOptions& options) {
  Fingerprinter fp;
  fp.Mix(0x4E464100u);  // domain tag "NFA"
  fp.Mix((static_cast<uint64_t>(options.determinize) << 1) | options.rebalance);
  fp.Mix(num_vars);
  fp.Mix(eval_nfa.NumStates());
  for (StateId s = 0; s < eval_nfa.NumStates(); ++s) {
    fp.Mix(3);
    fp.Mix(eval_nfa.IsAccepting(s));
    for (const Nfa::CharArc& arc : eval_nfa.CharArcsFrom(s)) {
      fp.Mix(4);
      fp.Mix((static_cast<uint64_t>(arc.sym) << 32) | arc.to);
    }
    for (const Nfa::MarkArc& arc : eval_nfa.MarkArcsFrom(s)) {
      fp.Mix(5);
      fp.Mix(arc.to);
      fp.Mix(arc.mask);
    }
  }
  const uint64_t digest = fp.Digest();
  return digest == 0 ? 1 : digest;
}

}  // namespace storage
}  // namespace slpspan
