// Read-only memory-mapped file wrapper (POSIX mmap) backing zero-copy
// prepared-bundle loads.
#include "storage/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <utility>

namespace slpspan {
namespace storage {

Result<MmapFile> MmapFile::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return Status::InvalidArgument("cannot open " + path);
  struct stat st;
  if (::fstat(fd, &st) != 0 || !S_ISREG(st.st_mode)) {
    ::close(fd);
    return Status::InvalidArgument("cannot stat " + path);
  }
  if (st.st_size == 0) {
    ::close(fd);
    return Status::Corruption("empty bundle file " + path);
  }
  void* map = ::mmap(nullptr, static_cast<size_t>(st.st_size), PROT_READ,
                     MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps its own reference
  if (map == MAP_FAILED) {
    return Status::InvalidArgument("cannot mmap " + path);
  }
  MmapFile file;
  file.data_ = static_cast<uint8_t*>(map);
  file.size_ = static_cast<size_t>(st.st_size);
  return file;
}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    if (data_ != nullptr) ::munmap(data_, size_);
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

MmapFile::~MmapFile() {
  if (data_ != nullptr) ::munmap(data_, size_);
}

}  // namespace storage
}  // namespace slpspan
