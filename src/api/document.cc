// Document — public handle implementation: compression factories, SLP
// (de)serialization entry points, fingerprinting, prepared-state save/load,
// and per-document cache accounting (see slpspan/document.h).
#include "slpspan/document.h"

#include <atomic>
#include <fstream>
#include <utility>

#include "api/internal.h"
#include "runtime/prepared_cache.h"
#include "runtime/shared_memo_registry.h"
#include "slp/factory.h"
#include "slp/lz77.h"
#include "slp/lz78.h"
#include "slp/repair.h"
#include "slp/serialize.h"
#include "storage/fingerprint.h"
#include "storage/prepared_bundle.h"

namespace slpspan {

namespace {

uint64_t NextDocumentId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

Document::Document(Slp slp)
    : slp_(std::move(slp)),
      id_(NextDocumentId()),
      counters_(std::make_shared<runtime_internal::DocCacheCounters>()) {}

Document::~Document() {
  std::vector<uint64_t> query_ids;
  {
    util::MutexLock lock(&counters_->mu);
    query_ids = counters_->query_ids;
  }
  // Only touch the global cache if this document ever put something in it
  // (never force the singleton into existence from a destructor).
  if (!query_ids.empty()) {
    runtime_internal::PreparedCache::Global().EraseDocument(id_, query_ids);
  }
}

Result<DocumentPtr> Document::FromText(std::string_view text,
                                       Compression method) {
  if (text.empty()) {
    return Status::InvalidArgument(
        "cannot compress an empty document (an SLP derives exactly one "
        "non-empty string)");
  }
  switch (method) {
    case Compression::kRePair:
      return FromSlp(RePairCompress(text));
    case Compression::kLz78:
      return FromSlp(Lz78Compress(text));
    case Compression::kLz77:
      return FromSlp(Lz77Compress(text));
    case Compression::kBalanced: {
      Result<Slp> slp = SlpFromString(text);
      if (!slp.ok()) return slp.status();  // unreachable: text is non-empty
      return FromSlp(std::move(slp).value());
    }
  }
  return Status::InvalidArgument("unknown compression method");
}

Result<DocumentPtr> Document::FromFile(const std::string& path,
                                       Compression method) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::InvalidArgument("cannot open " + path);
  std::string text;
  in.seekg(0, std::ios::end);
  const std::streamoff size = in ? static_cast<std::streamoff>(in.tellg()) : -1;
  if (size > 0) {
    // Single read into a pre-sized buffer (no stringstream double-copy).
    in.seekg(0, std::ios::beg);
    text.resize(static_cast<size_t>(size));
    in.read(text.data(), size);
    if (!in) return Status::InvalidArgument("short read on " + path);
  } else {
    // Not seekable (pipe, FIFO, /dev/stdin) or a seekable file reporting
    // size 0 (procfs/sysfs pseudo-files do, yet carry content): chunked
    // append from the start.
    in.clear();
    in.seekg(0, std::ios::beg);
    in.clear();
    char buf[1 << 16];
    while (in.read(buf, sizeof(buf)) || in.gcount() > 0) {
      text.append(buf, static_cast<size_t>(in.gcount()));
    }
  }
  if (text.empty()) {
    return Status::InvalidArgument(
        "file " + path +
        " is empty (an SLP derives exactly one non-empty document)");
  }
  return FromText(text, method);
}

DocumentPtr Document::FromSlp(Slp slp) {
  // Private constructor — not reachable by make_shared.
  return DocumentPtr(new Document(std::move(slp)));
}

Result<DocumentPtr> Document::FromSlpFile(const std::string& path) {
  Result<Slp> slp = LoadSlpFromFile(path);
  if (!slp.ok()) return slp.status();
  return FromSlp(std::move(slp).value());
}

Status Document::Save(const std::string& path) const {
  return SaveSlpToFile(slp_, path);
}

uint64_t Document::fingerprint() const {
  uint64_t fp = fingerprint_.load(std::memory_order_relaxed);
  if (fp == 0) {
    // Benign race: FingerprintSlp is deterministic, so concurrent first
    // callers store the same value.
    fp = storage::FingerprintSlp(slp_);
    fingerprint_.store(fp, std::memory_order_relaxed);
  }
  return fp;
}

Status Document::SavePrepared(const Query& query, const std::string& path,
                              PrepareStats* stats, BundleCodec codec) const {
  std::shared_ptr<const api_internal::PreparedState> state =
      PreparedFor(query, stats);
  if (query.options().determinize) {
    // Materialize the counting tables so the bundle warms Count/At/Sample
    // too, not just IsNonEmpty/Extract.
    (void)state->Counter(query.state_->evaluator);
  }
  return storage::WritePreparedBundleFile(path, *state, fingerprint(),
                                          query.fingerprint(), codec);
}

Status Document::LoadPrepared(const Query& query, const std::string& path) const {
  Result<storage::StatePtr> loaded = storage::LoadPreparedBundleFile(
      path, fingerprint(), query.fingerprint(),
      runtime_internal::PreparedCache::RechargeHookFor(id_, query.id()));
  if (!loaded.ok()) return loaded.status();
  runtime_internal::PreparedCache::Global().Insert(
      id_, query.id(), fingerprint(), query.fingerprint(), counters_, *loaded);
  return Status::OK();
}

Document::CacheStats Document::cache_stats() const {
  const runtime_internal::DocCacheCounters& c = *counters_;
  return CacheStats{c.hits.load(std::memory_order_relaxed),
                    c.misses.load(std::memory_order_relaxed),
                    c.evictions.load(std::memory_order_relaxed),
                    c.entries.load(std::memory_order_relaxed),
                    c.bytes.load(std::memory_order_relaxed)};
}

std::shared_ptr<const api_internal::PreparedState> Document::PreparedFor(
    const Query& query, PrepareStats* stats) const {
  std::shared_ptr<const api_internal::PreparedState> state =
      runtime_internal::PreparedCache::Global().GetOrBuild(
          id_, query.id(), fingerprint(), query.fingerprint(), counters_, [&] {
            PrepareStats build_stats;
            PrepareOptions opts = Runtime::prepare_options();
            if (opts.shared_memo == nullptr) {
              // A live corpus run over this query shares one product memo
              // across every document it prepares (src/corpus/): pick it
              // up here so preparations reached through the cache and
              // Session workers join the run without any API change.
              opts.shared_memo =
                  runtime_internal::SharedMemoRegistry::Global().Lookup(
                      query.fingerprint());
            }
            PreparedDocument prepared =
                query.state_->evaluator.Prepare(slp_, opts, &build_stats);
            return std::make_shared<const api_internal::PreparedState>(
                std::move(prepared),
                runtime_internal::PreparedCache::RechargeHookFor(id_,
                                                                 query.id()),
                std::string(), nullptr, build_stats);
          });
  if (stats != nullptr) *stats = state->prepare_stats;
  return state;
}

}  // namespace slpspan
