#include "slpspan/document.h"

#include <fstream>
#include <sstream>
#include <utility>

#include "api/internal.h"
#include "slp/factory.h"
#include "slp/lz77.h"
#include "slp/lz78.h"
#include "slp/repair.h"
#include "slp/serialize.h"

namespace slpspan {

Result<DocumentPtr> Document::FromText(std::string_view text,
                                       Compression method) {
  if (text.empty()) {
    return Status::InvalidArgument(
        "cannot compress an empty document (an SLP derives exactly one "
        "non-empty string)");
  }
  switch (method) {
    case Compression::kRePair:
      return FromSlp(RePairCompress(text));
    case Compression::kLz78:
      return FromSlp(Lz78Compress(text));
    case Compression::kLz77:
      return FromSlp(Lz77Compress(text));
    case Compression::kBalanced:
      return FromSlp(SlpFromString(text));
  }
  return Status::InvalidArgument("unknown compression method");
}

Result<DocumentPtr> Document::FromFile(const std::string& path,
                                       Compression method) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::InvalidArgument("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return FromText(ss.str(), method);
}

DocumentPtr Document::FromSlp(Slp slp) {
  // Private constructor — not reachable by make_shared.
  return DocumentPtr(new Document(std::move(slp)));
}

Result<DocumentPtr> Document::FromSlpFile(const std::string& path) {
  Result<Slp> slp = LoadSlpFromFile(path);
  if (!slp.ok()) return slp.status();
  return FromSlp(std::move(slp).value());
}

Status Document::Save(const std::string& path) const {
  return SaveSlpToFile(slp_, path);
}

Document::CacheStats Document::cache_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return CacheStats{hits_, misses_, cache_.size()};
}

std::shared_ptr<const api_internal::PreparedState> Document::PreparedFor(
    const Query& query) const {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = cache_.find(query.id());
  if (it != cache_.end()) {
    ++hits_;
    return it->second;
  }
  ++misses_;
  lock.unlock();
  // Build outside the lock: preparation is O(|M| + size(S)·q³) and must not
  // serialize unrelated queries. A racing builder for the same query is
  // harmless — the first insert wins below.
  auto prep = std::make_shared<api_internal::PreparedState>(
      query.state_->evaluator.Prepare(slp_));
  lock.lock();
  auto [pos, inserted] = cache_.emplace(query.id(), std::move(prep));
  return pos->second;
}

}  // namespace slpspan
