// Query — public handle implementation: compiles a pattern once, assigns a
// process-unique id and a stable fingerprint for cache/bundle identity.
#include "slpspan/query.h"

#include <atomic>
#include <utility>

#include "api/internal.h"
#include "storage/fingerprint.h"

namespace slpspan {

namespace {

uint64_t NextQueryId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

Result<Query> Query::Wrap(Spanner spanner, QueryOptions opts) {
  Result<SpannerEvaluator> evaluator = SpannerEvaluator::Make(
      spanner, {.determinize = opts.determinize, .rebalance = opts.rebalance});
  if (!evaluator.ok()) return evaluator.status();
  const uint64_t fingerprint = storage::FingerprintQuery(
      evaluator->eval_nfa(), evaluator->num_vars(), opts);
  auto state = std::make_shared<api_internal::QueryState>(
      NextQueryId(), fingerprint, opts, std::move(spanner),
      std::move(evaluator).value());
  return Query(std::move(state));
}

Result<Query> Query::Compile(std::string_view pattern,
                             std::string_view alphabet, QueryOptions opts) {
  Result<Spanner> spanner = Spanner::Compile(pattern, alphabet);
  if (!spanner.ok()) return spanner.status();
  return Wrap(std::move(spanner).value(), opts);
}

Result<Query> Query::FromAutomaton(Nfa raw, VariableSet vars,
                                   QueryOptions opts) {
  Result<Spanner> spanner =
      Spanner::FromAutomaton(std::move(raw), std::move(vars));
  if (!spanner.ok()) return spanner.status();
  return Wrap(std::move(spanner).value(), opts);
}

const std::string& Query::pattern() const { return state_->spanner.pattern(); }

const VariableSet& Query::vars() const { return state_->evaluator.vars(); }

uint32_t Query::num_vars() const { return state_->evaluator.num_vars(); }

uint32_t Query::num_states() const {
  return state_->evaluator.eval_nfa().NumStates();
}

const QueryOptions& Query::options() const { return state_->options; }

uint64_t Query::id() const { return state_->id; }

uint64_t Query::fingerprint() const { return state_->fingerprint; }

}  // namespace slpspan
