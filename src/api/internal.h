// Shared implementation state behind the public API handles. Private to
// src/api/; public headers only forward-declare these types.

#ifndef SLPSPAN_API_INTERNAL_H_
#define SLPSPAN_API_INTERNAL_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>

#include "core/count.h"
#include "core/enumerate.h"
#include "core/evaluator.h"
#include "slpspan/document.h"
#include "slpspan/engine.h"
#include "slpspan/query.h"
#include "spanner/spanner.h"

namespace slpspan {
namespace api_internal {

/// Compiled-query state shared by all copies of one Query.
struct QueryState {
  uint64_t id = 0;
  uint64_t fingerprint = 0;  ///< content hash of the evaluation automaton
  QueryOptions options;
  Spanner spanner;
  SpannerEvaluator evaluator;

  QueryState(uint64_t id_in, uint64_t fingerprint_in, QueryOptions options_in,
             Spanner spanner_in, SpannerEvaluator evaluator_in)
      : id(id_in),
        fingerprint(fingerprint_in),
        options(options_in),
        spanner(std::move(spanner_in)),
        evaluator(std::move(evaluator_in)) {}
};

/// Per-(document, query) prepared evaluation state: the sentinel-extended
/// grammar + Lemma 6.5 tables, plus lazily-built counting tables. Cached
/// inside the Document and shared by every Engine/ResultStream that uses it.
struct PreparedState {
  /// Entry re-charging: invoked with the byte delta when the lazily-built
  /// counting tables materialize after insertion (positive for the new
  /// tables, net of any raw bundle section freed at the same time), so the
  /// cache keeps this entry's residency charge honest. `self` identifies
  /// the firing state: a hook outliving its eviction must not re-charge a
  /// later entry under the same key.
  using RechargeFn = std::function<void(const PreparedState* self,
                                        int64_t delta_bytes)>;

  /// Materializes counting tables from a persisted bundle's counter section
  /// (storage layer). Returning nullopt (e.g. the section failed
  /// validation) falls back to building them from scratch.
  using CounterLoader = std::function<std::optional<CountTables>(
      const Slp&, const Nfa&, const EvalTables&, const std::string& section)>;

  explicit PreparedState(PreparedDocument prepared_in,
                         RechargeFn recharge = nullptr,
                         std::string counter_section = {},
                         CounterLoader counter_loader = nullptr,
                         PrepareStats stats = {})
      : prepared(std::move(prepared_in)),
        prepare_stats(stats),
        recharge_(std::move(recharge)),
        counter_section_(std::move(counter_section)),
        counter_loader_(std::move(counter_loader)) {}

  const PreparedDocument prepared;

  /// What the preparation that built this state did (all-zero — waves == 0
  /// — for state deserialized from a bundle, which never ran the pass).
  /// Reported by Document::PreparedFor for cache hits and misses alike: the
  /// stats describe the build that produced the cached state.
  const PrepareStats prepare_stats;

  /// Bytes charged to the runtime prepared-state cache at insertion: the
  /// sentinel-extended grammar plus the Lemma 6.5 bit-matrices — the
  /// dominant per-pair cost, O(size(S)·q²/8) — plus a loaded bundle's raw
  /// counter section while it is still held. The lazily-built counting
  /// tables are charged separately when they materialize, via recharge_.
  uint64_t MemoryUsage() const {
    return sizeof(*this) + prepared.slp().MemoryUsage() +
           prepared.tables().MemoryUsage() + counter_section_.capacity();
  }

  /// Counting tables for Count/At/Sample; materialized once on first use —
  /// from the bundle's counter section when one was loaded (the raw bytes
  /// are released afterwards), else built in O(size(S)·q²) — then
  /// re-charged to the cache entry. The caller must ensure the query is
  /// determinized (CountTables requires it).
  const CountTables& Counter(const SpannerEvaluator& evaluator) const {
    std::call_once(counter_once_, [&] {
      if (counter_loader_ && !counter_section_.empty()) {
        counter_ = counter_loader_(prepared.slp(), evaluator.eval_nfa(),
                                   prepared.tables(), counter_section_);
      }
      if (!counter_) {
        counter_.emplace(prepared.slp(), evaluator.eval_nfa(),
                         prepared.tables());
      }
      const int64_t freed = static_cast<int64_t>(counter_section_.capacity());
      counter_section_ = std::string();  // the parsed tables replace the bytes
      counter_loader_ = nullptr;
      counter_ready_.store(true, std::memory_order_release);
      if (recharge_) {
        recharge_(this, static_cast<int64_t>(counter_->MemoryUsage()) - freed);
      }
    });
    return *counter_;
  }

  /// The counting tables if they have already materialized, else null.
  /// Never builds — this is the spill-time snapshot the serializer uses.
  const CountTables* CounterIfReady() const {
    return counter_ready_.load(std::memory_order_acquire) ? &*counter_
                                                          : nullptr;
  }

 private:
  RechargeFn recharge_;
  mutable std::string counter_section_;   // raw bundle section, until parsed
  mutable CounterLoader counter_loader_;  // both released by Counter()
  mutable std::once_flag counter_once_;
  mutable std::atomic<bool> counter_ready_{false};
  mutable std::optional<CountTables> counter_;
};

/// Everything a live ResultStream owns. Declaration order matters: the
/// enumerator borrows from `query`/`prep`, so they must be initialized
/// first and destroyed last.
struct StreamState {
  Query query;
  DocumentPtr document;
  std::shared_ptr<const PreparedState> prep;
  CompressedEnumerator enumerator;
  std::optional<uint64_t> limit;
  std::function<bool()> cancel;  ///< polled at every stream step; see below
  SpanTuple current;
  uint64_t emitted = 0;
  bool valid = false;
  bool cancelled = false;  ///< the cancel checkpoint fired (vs exhaustion)

  StreamState(Query query_in, DocumentPtr document_in,
              std::shared_ptr<const PreparedState> prep_in, const Nfa* eval_nfa,
              uint32_t num_vars, std::optional<uint64_t> limit_in,
              std::function<bool()> cancel_in)
      : query(std::move(query_in)),
        document(std::move(document_in)),
        prep(std::move(prep_in)),
        enumerator(&prep->prepared.slp(), eval_nfa, &prep->prepared.tables(),
                   num_vars),
        limit(limit_in),
        cancel(std::move(cancel_in)) {
    // Checkpoint before the first tuple is surfaced (Engine::Extract checks
    // once more before the enumerator's first-tuple search even starts).
    if (ShouldCancel()) return;
    if (enumerator.Valid() && (!limit || *limit > 0)) {
      current = enumerator.Current();
      emitted = 1;
      valid = true;
    }
  }

  /// Cancellation checkpoint: a cancelled/expired request stops at the next
  /// stream step — no tuple past the checkpoint is ever computed.
  bool ShouldCancel() {
    if (cancel && cancel()) {
      cancelled = true;
      valid = false;
      return true;
    }
    return false;
  }

  void Advance() {
    // Programmer contract, mirrored by ResultStream::Next's public CHECK.
    SLPSPAN_CHECK(valid);  // repo-lint: allow(check-in-library)
    if (ShouldCancel()) return;
    if (limit && emitted >= *limit) {
      valid = false;  // early exit: never compute tuples past the limit
      return;
    }
    enumerator.Next();
    if (!enumerator.Valid()) {
      valid = false;
      return;
    }
    current = enumerator.Current();
    ++emitted;
  }
};

}  // namespace api_internal
}  // namespace slpspan

#endif  // SLPSPAN_API_INTERNAL_H_
