// Shared implementation state behind the public API handles. Private to
// src/api/; public headers only forward-declare these types.

#ifndef SLPSPAN_API_INTERNAL_H_
#define SLPSPAN_API_INTERNAL_H_

#include <memory>
#include <mutex>
#include <optional>

#include "core/count.h"
#include "core/enumerate.h"
#include "core/evaluator.h"
#include "slpspan/document.h"
#include "slpspan/engine.h"
#include "slpspan/query.h"
#include "spanner/spanner.h"

namespace slpspan {
namespace api_internal {

/// Compiled-query state shared by all copies of one Query.
struct QueryState {
  uint64_t id = 0;
  QueryOptions options;
  Spanner spanner;
  SpannerEvaluator evaluator;

  QueryState(uint64_t id_in, QueryOptions options_in, Spanner spanner_in,
             SpannerEvaluator evaluator_in)
      : id(id_in),
        options(options_in),
        spanner(std::move(spanner_in)),
        evaluator(std::move(evaluator_in)) {}
};

/// Per-(document, query) prepared evaluation state: the sentinel-extended
/// grammar + Lemma 6.5 tables, plus lazily-built counting tables. Cached
/// inside the Document and shared by every Engine/ResultStream that uses it.
struct PreparedState {
  explicit PreparedState(PreparedDocument prepared_in)
      : prepared(std::move(prepared_in)) {}

  const PreparedDocument prepared;

  /// Bytes charged to the runtime prepared-state cache: the sentinel-extended
  /// grammar plus the Lemma 6.5 bit-matrices — the dominant per-pair cost,
  /// O(size(S)·q²/8). The lazily-built counting tables are deliberately not
  /// re-charged (an entry's charge must stay constant while it is resident);
  /// CountTables::MemoryUsage exists for observability.
  uint64_t MemoryUsage() const {
    return sizeof(*this) + prepared.slp().MemoryUsage() +
           prepared.tables().MemoryUsage();
  }

  /// Counting tables for Count/At/Sample; built once on first use. The
  /// caller must ensure the query is determinized (CountTables requires it).
  const CountTables& Counter(const SpannerEvaluator& evaluator) const {
    std::call_once(counter_once_, [&] {
      counter_.emplace(prepared.slp(), evaluator.eval_nfa(), prepared.tables());
    });
    return *counter_;
  }

 private:
  mutable std::once_flag counter_once_;
  mutable std::optional<CountTables> counter_;
};

/// Everything a live ResultStream owns. Declaration order matters: the
/// enumerator borrows from `query`/`prep`, so they must be initialized
/// first and destroyed last.
struct StreamState {
  Query query;
  DocumentPtr document;
  std::shared_ptr<const PreparedState> prep;
  CompressedEnumerator enumerator;
  std::optional<uint64_t> limit;
  SpanTuple current;
  uint64_t emitted = 0;
  bool valid = false;

  StreamState(Query query_in, DocumentPtr document_in,
              std::shared_ptr<const PreparedState> prep_in, const Nfa* eval_nfa,
              uint32_t num_vars, std::optional<uint64_t> limit_in)
      : query(std::move(query_in)),
        document(std::move(document_in)),
        prep(std::move(prep_in)),
        enumerator(&prep->prepared.slp(), eval_nfa, &prep->prepared.tables(),
                   num_vars),
        limit(limit_in) {
    if (enumerator.Valid() && (!limit || *limit > 0)) {
      current = enumerator.Current();
      emitted = 1;
      valid = true;
    }
  }

  void Advance() {
    SLPSPAN_CHECK(valid);
    if (limit && emitted >= *limit) {
      valid = false;  // early exit: never compute tuples past the limit
      return;
    }
    enumerator.Next();
    if (!enumerator.Valid()) {
      valid = false;
      return;
    }
    current = enumerator.Current();
    ++emitted;
  }
};

}  // namespace api_internal
}  // namespace slpspan

#endif  // SLPSPAN_API_INTERNAL_H_
