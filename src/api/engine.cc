// Engine and ResultStream — the public query-execution surface: runs a
// compiled Query over a Document's prepared state and streams span tuples.
#include "slpspan/engine.h"

#include <utility>

#include "api/internal.h"
#include "util/rng.h"

namespace slpspan {

// ----------------------------------------------------------- ResultStream ---

ResultStream::ResultStream(std::unique_ptr<api_internal::StreamState> state)
    : state_(std::move(state)) {}

ResultStream::ResultStream(std::nullptr_t, bool born_cancelled)
    : born_cancelled_(born_cancelled) {}

ResultStream::ResultStream(ResultStream&&) noexcept = default;
ResultStream& ResultStream::operator=(ResultStream&&) noexcept = default;
ResultStream::~ResultStream() = default;

bool ResultStream::Valid() const { return state_ != nullptr && state_->valid; }

void ResultStream::Next() {
  // Programmer contract (documented on ResultStream), not user input: a
  // default-constructed or moved-from stream must not be advanced.
  SLPSPAN_CHECK(state_ != nullptr);  // repo-lint: allow(check-in-library)
  state_->Advance();
}

const SpanTuple& ResultStream::Current() const {
  // Programmer contract: Current() on an exhausted stream is API misuse.
  SLPSPAN_CHECK(Valid());  // repo-lint: allow(check-in-library)
  return state_->current;
}

uint64_t ResultStream::num_emitted() const {
  return state_ == nullptr ? 0 : state_->emitted;
}

bool ResultStream::cancelled() const {
  return state_ == nullptr ? born_cancelled_ : state_->cancelled;
}

// ------------------------------------------------------------------ Engine ---

Engine::Engine(Query query, DocumentPtr document)
    : query_(std::move(query)), document_(std::move(document)) {
  // Programmer contract: constructing an Engine over a null DocumentPtr is
  // API misuse (Document factories never return null on success).
  SLPSPAN_CHECK(document_ != nullptr);  // repo-lint: allow(check-in-library)
}

std::shared_ptr<const api_internal::PreparedState> Engine::Prepared() const {
  return document_->PreparedFor(query_);
}

bool Engine::IsNonEmpty() const {
  return query_.state_->evaluator.CheckNonEmptiness(document_->slp());
}

Result<bool> Engine::Matches(const SpanTuple& tuple) const {
  if (tuple.num_vars() != query_.num_vars()) {
    return Status::InvalidArgument(
        "span-tuple has " + std::to_string(tuple.num_vars()) +
        " variables, query has " + std::to_string(query_.num_vars()));
  }
  const uint64_t d = document_->length();
  for (VarId v = 0; v < tuple.num_vars(); ++v) {
    const auto& span = tuple.Get(v);
    if (!span.has_value()) continue;
    if (span->begin < 1 || span->begin > span->end) {
      return Status::InvalidArgument("malformed span for variable " +
                                     query_.vars().Name(v));
    }
    if (span->end > d + 1) {
      return Status::OutOfRange("span of variable " + query_.vars().Name(v) +
                                " ends past the document (d=" +
                                std::to_string(d) + ")");
    }
  }
  return query_.state_->evaluator.CheckModel(document_->slp(), tuple);
}

ResultStream Engine::Extract(ExtractOptions opts) const {
  if (opts.limit && *opts.limit == 0) {
    // Nothing may be emitted: skip the preparation and the first-tuple
    // search entirely (the stream contract says unneeded tuples are never
    // computed).
    return ResultStream(nullptr, /*born_cancelled=*/false);
  }
  if (opts.cancel && opts.cancel()) {
    // Cancelled before the stream started: never prepare, never search.
    return ResultStream(nullptr, /*born_cancelled=*/true);
  }
  auto state = std::make_unique<api_internal::StreamState>(
      query_, document_, Prepared(), &query_.state_->evaluator.eval_nfa(),
      query_.num_vars(), opts.limit, std::move(opts.cancel));
  return ResultStream(std::move(state));
}

uint64_t Engine::Extract(const std::function<bool(const SpanTuple&)>& sink,
                         ExtractOptions opts) const {
  uint64_t delivered = 0;
  for (ResultStream stream = Extract(opts); stream.Valid(); stream.Next()) {
    ++delivered;
    if (!sink(stream.Current())) break;
  }
  return delivered;
}

std::vector<SpanTuple> Engine::ExtractAll(ExtractOptions opts) const {
  std::vector<SpanTuple> out;
  for (ResultStream stream = Extract(opts); stream.Valid(); stream.Next()) {
    out.push_back(stream.Current());
  }
  return out;
}

Result<CountInfo> Engine::Count() const {
  auto prep = Prepared();
  if (!query_.options().determinize) {
    // No disjoint decomposition without determinism (Lemma 8.7); fall back
    // to the deduplicating materialization of Theorem 7.1.
    return CountInfo{
        query_.state_->evaluator.ComputeAllMarkers(prep->prepared).size(),
        true};
  }
  const CountTables& counter = prep->Counter(query_.state_->evaluator);
  return CountInfo{counter.Total(), !counter.overflowed()};
}

Result<SpanTuple> Engine::At(uint64_t idx) const {
  if (!query_.options().determinize) {
    return Status::NotSupported(
        "random access requires a determinized query (QueryOptions)");
  }
  auto prep = Prepared();
  const CountTables& counter = prep->Counter(query_.state_->evaluator);
  if (counter.overflowed()) {
    return Status::NotSupported(
        "result count exceeds 2^64; random access range unknown");
  }
  if (idx >= counter.Total()) {
    return Status::OutOfRange("index " + std::to_string(idx) +
                              " >= |result set| = " +
                              std::to_string(counter.Total()));
  }
  return query_.state_->evaluator.TupleOf(counter.Select(idx));
}

Result<std::vector<SpanTuple>> Engine::Sample(uint64_t k, uint64_t seed) const {
  if (!query_.options().determinize) {
    return Status::NotSupported(
        "sampling requires a determinized query (QueryOptions)");
  }
  auto prep = Prepared();
  const CountTables& counter = prep->Counter(query_.state_->evaluator);
  if (counter.overflowed()) {
    return Status::NotSupported(
        "result count exceeds 2^64; cannot sample uniformly");
  }
  std::vector<SpanTuple> out;
  if (counter.Total() == 0) return out;
  Rng rng(seed);
  // Cap the up-front reservation: k is caller-controlled and may be huge;
  // reserve(k) must not be the allocation that kills the process.
  out.reserve(std::min<uint64_t>(k, 4096));
  for (uint64_t i = 0; i < k; ++i) {
    out.push_back(
        query_.state_->evaluator.TupleOf(counter.Select(rng.Below(counter.Total()))));
  }
  return out;
}

}  // namespace slpspan
