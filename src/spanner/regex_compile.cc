// Thompson construction from the regex AST to a raw NFA, plus the
// Spanner::Compile / Spanner::FromAutomaton entry points that normalize it.
#include "spanner/regex_parser.h"
#include "spanner/spanner.h"

namespace slpspan {

namespace {

// Thompson fragments: every Build() call returns (entry, exit) states such
// that the fragment's language labels exactly the entry->exit paths.
struct Fragment {
  StateId entry;
  StateId exit;
};

class ThompsonBuilder {
 public:
  explicit ThompsonBuilder(Nfa* nfa) : nfa_(nfa) {}

  // Returns Result instead of aborting on an unknown node kind: the AST
  // comes from ParseRegex over user input, and a decoder bug or future Kind
  // must surface as a compile error the caller can report, not a crash.
  Result<Fragment> Build(const RegexNode& node) {
    switch (node.kind) {
      case RegexNode::Kind::kEpsilon: {
        const StateId s = nfa_->AddState();
        return Fragment{s, s};
      }
      case RegexNode::Kind::kCharClass: {
        const StateId s = nfa_->AddState();
        const StateId t = nfa_->AddState();
        for (int c = 0; c < 256; ++c) {
          if (node.cls.test(c)) nfa_->AddCharArc(s, static_cast<SymbolId>(c), t);
        }
        return Fragment{s, t};
      }
      case RegexNode::Kind::kConcat: {
        Result<Fragment> acc = Build(*node.children[0]);
        if (!acc.ok()) return acc;
        Fragment frag = *acc;
        for (size_t i = 1; i < node.children.size(); ++i) {
          Result<Fragment> next = Build(*node.children[i]);
          if (!next.ok()) return next;
          nfa_->AddEpsArc(frag.exit, next->entry);
          frag.exit = next->exit;
        }
        return frag;
      }
      case RegexNode::Kind::kUnion: {
        const StateId s = nfa_->AddState();
        const StateId t = nfa_->AddState();
        for (const RegexPtr& child : node.children) {
          Result<Fragment> f = Build(*child);
          if (!f.ok()) return f;
          nfa_->AddEpsArc(s, f->entry);
          nfa_->AddEpsArc(f->exit, t);
        }
        return Fragment{s, t};
      }
      case RegexNode::Kind::kStar: {
        const StateId s = nfa_->AddState();
        const StateId t = nfa_->AddState();
        Result<Fragment> f = Build(*node.children[0]);
        if (!f.ok()) return f;
        nfa_->AddEpsArc(s, t);
        nfa_->AddEpsArc(s, f->entry);
        nfa_->AddEpsArc(f->exit, f->entry);
        nfa_->AddEpsArc(f->exit, t);
        return Fragment{s, t};
      }
      case RegexNode::Kind::kPlus: {
        Result<Fragment> f = Build(*node.children[0]);
        if (!f.ok()) return f;
        const StateId t = nfa_->AddState();
        nfa_->AddEpsArc(f->exit, f->entry);
        nfa_->AddEpsArc(f->exit, t);
        return Fragment{f->entry, t};
      }
      case RegexNode::Kind::kOptional: {
        const StateId s = nfa_->AddState();
        const StateId t = nfa_->AddState();
        Result<Fragment> f = Build(*node.children[0]);
        if (!f.ok()) return f;
        nfa_->AddEpsArc(s, t);
        nfa_->AddEpsArc(s, f->entry);
        nfa_->AddEpsArc(f->exit, t);
        return Fragment{s, t};
      }
      case RegexNode::Kind::kCapture: {
        const StateId s = nfa_->AddState();
        const StateId t = nfa_->AddState();
        Result<Fragment> f = Build(*node.children[0]);
        if (!f.ok()) return f;
        nfa_->AddMarkArc(s, OpenMarker(node.var), f->entry);
        nfa_->AddMarkArc(f->exit, CloseMarker(node.var), t);
        return Fragment{s, t};
      }
    }
    return Status::InvalidArgument("regex AST contains an unknown node kind");
  }

 private:
  Nfa* nfa_;
};

}  // namespace

Result<Nfa> CompileRegexToNfa(const RegexNode& root) {
  Nfa nfa;  // state 0 = start
  ThompsonBuilder builder(&nfa);
  Result<Fragment> f = builder.Build(root);
  if (!f.ok()) return f.status();
  nfa.AddEpsArc(0, f->entry);
  nfa.SetAccepting(f->exit, true);
  return nfa;
}

Result<Spanner> Spanner::Compile(std::string_view pattern, std::string_view alphabet) {
  Spanner sp;
  sp.pattern_ = std::string(pattern);
  const ByteSet sigma = MakeAlphabet(alphabet);
  Result<RegexPtr> ast = ParseRegex(pattern, sigma, &sp.vars_);
  if (!ast.ok()) return ast.status();
  VarUsage usage = 0;
  Status st = ValidateVariableUsage(**ast, &usage);
  if (!st.ok()) return st;
  Result<Nfa> raw = CompileRegexToNfa(**ast);
  if (!raw.ok()) return raw.status();
  sp.raw_ = std::move(raw).value();
  sp.normalized_ = Trim(Normalize(sp.raw_));
  return sp;
}

Result<Spanner> Spanner::FromAutomaton(Nfa raw, VariableSet vars) {
  // Reject masks that reference variables outside `vars`.
  const MarkerMask allowed =
      vars.size() >= 32 ? ~MarkerMask{0} : ((MarkerMask{1} << (2 * vars.size())) - 1);
  for (StateId s = 0; s < raw.NumStates(); ++s) {
    for (const Nfa::MarkArc& a : raw.MarkArcsFrom(s)) {
      if ((a.mask & ~allowed) != 0) {
        return Status::InvalidArgument("marker arc uses an undeclared variable");
      }
    }
  }
  Spanner sp;
  sp.vars_ = std::move(vars);
  sp.raw_ = std::move(raw);
  sp.normalized_ = Trim(Normalize(sp.raw_));
  return sp;
}

}  // namespace slpspan
