#include "spanner/regex_parser.h"
#include "spanner/spanner.h"

namespace slpspan {

namespace {

// Thompson fragments: every Build() call returns (entry, exit) states such
// that the fragment's language labels exactly the entry->exit paths.
struct Fragment {
  StateId entry;
  StateId exit;
};

class ThompsonBuilder {
 public:
  explicit ThompsonBuilder(Nfa* nfa) : nfa_(nfa) {}

  Fragment Build(const RegexNode& node) {
    switch (node.kind) {
      case RegexNode::Kind::kEpsilon: {
        const StateId s = nfa_->AddState();
        return {s, s};
      }
      case RegexNode::Kind::kCharClass: {
        const StateId s = nfa_->AddState();
        const StateId t = nfa_->AddState();
        for (int c = 0; c < 256; ++c) {
          if (node.cls.test(c)) nfa_->AddCharArc(s, static_cast<SymbolId>(c), t);
        }
        return {s, t};
      }
      case RegexNode::Kind::kConcat: {
        Fragment acc = Build(*node.children[0]);
        for (size_t i = 1; i < node.children.size(); ++i) {
          Fragment next = Build(*node.children[i]);
          nfa_->AddEpsArc(acc.exit, next.entry);
          acc.exit = next.exit;
        }
        return acc;
      }
      case RegexNode::Kind::kUnion: {
        const StateId s = nfa_->AddState();
        const StateId t = nfa_->AddState();
        for (const RegexPtr& child : node.children) {
          Fragment f = Build(*child);
          nfa_->AddEpsArc(s, f.entry);
          nfa_->AddEpsArc(f.exit, t);
        }
        return {s, t};
      }
      case RegexNode::Kind::kStar: {
        const StateId s = nfa_->AddState();
        const StateId t = nfa_->AddState();
        Fragment f = Build(*node.children[0]);
        nfa_->AddEpsArc(s, t);
        nfa_->AddEpsArc(s, f.entry);
        nfa_->AddEpsArc(f.exit, f.entry);
        nfa_->AddEpsArc(f.exit, t);
        return {s, t};
      }
      case RegexNode::Kind::kPlus: {
        Fragment f = Build(*node.children[0]);
        const StateId t = nfa_->AddState();
        nfa_->AddEpsArc(f.exit, f.entry);
        nfa_->AddEpsArc(f.exit, t);
        return {f.entry, t};
      }
      case RegexNode::Kind::kOptional: {
        const StateId s = nfa_->AddState();
        const StateId t = nfa_->AddState();
        Fragment f = Build(*node.children[0]);
        nfa_->AddEpsArc(s, t);
        nfa_->AddEpsArc(s, f.entry);
        nfa_->AddEpsArc(f.exit, t);
        return {s, t};
      }
      case RegexNode::Kind::kCapture: {
        const StateId s = nfa_->AddState();
        const StateId t = nfa_->AddState();
        Fragment f = Build(*node.children[0]);
        nfa_->AddMarkArc(s, OpenMarker(node.var), f.entry);
        nfa_->AddMarkArc(f.exit, CloseMarker(node.var), t);
        return {s, t};
      }
    }
    SLPSPAN_CHECK(false);
    return {0, 0};
  }

 private:
  Nfa* nfa_;
};

}  // namespace

Nfa CompileRegexToNfa(const RegexNode& root) {
  Nfa nfa;  // state 0 = start
  ThompsonBuilder builder(&nfa);
  Fragment f = builder.Build(root);
  nfa.AddEpsArc(0, f.entry);
  nfa.SetAccepting(f.exit, true);
  return nfa;
}

Result<Spanner> Spanner::Compile(std::string_view pattern, std::string_view alphabet) {
  Spanner sp;
  sp.pattern_ = std::string(pattern);
  const ByteSet sigma = MakeAlphabet(alphabet);
  Result<RegexPtr> ast = ParseRegex(pattern, sigma, &sp.vars_);
  if (!ast.ok()) return ast.status();
  VarUsage usage = 0;
  Status st = ValidateVariableUsage(**ast, &usage);
  if (!st.ok()) return st;
  sp.raw_ = CompileRegexToNfa(**ast);
  sp.normalized_ = Trim(Normalize(sp.raw_));
  return sp;
}

Result<Spanner> Spanner::FromAutomaton(Nfa raw, VariableSet vars) {
  // Reject masks that reference variables outside `vars`.
  const MarkerMask allowed =
      vars.size() >= 32 ? ~MarkerMask{0} : ((MarkerMask{1} << (2 * vars.size())) - 1);
  for (StateId s = 0; s < raw.NumStates(); ++s) {
    for (const Nfa::MarkArc& a : raw.MarkArcsFrom(s)) {
      if ((a.mask & ~allowed) != 0) {
        return Status::InvalidArgument("marker arc uses an undeclared variable");
      }
    }
  }
  Spanner sp;
  sp.vars_ = std::move(vars);
  sp.raw_ = std::move(raw);
  sp.normalized_ = Trim(Normalize(sp.raw_));
  return sp;
}

}  // namespace slpspan
