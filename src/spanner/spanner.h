// Spanner — a compiled regular (Sigma, X)-spanner.
//
// A Spanner bundles the variable set X, the terminal alphabet, and two
// automata views of the subword-marked language (paper Section 3.2):
//   * raw()        — as constructed (Thompson NFA with eps and single-marker
//                    arcs, or a hand-built automaton),
//   * normalized() — eps-free with merged set transitions and trimmed; this
//                    is the representation every evaluation algorithm uses.

#ifndef SLPSPAN_SPANNER_SPANNER_H_
#define SLPSPAN_SPANNER_SPANNER_H_

#include <string>
#include <string_view>

#include "spanner/nfa.h"
#include "spanner/regex_ast.h"
#include "spanner/variables.h"
#include "util/status.h"

namespace slpspan {

class Spanner {
 public:
  /// Compiles a spanner regex (see regex_parser.h) over the given terminal
  /// alphabet (the distinct bytes of `alphabet`).
  static Result<Spanner> Compile(std::string_view pattern, std::string_view alphabet);

  /// Wraps a hand-built automaton over Sigma ∪ P(Gamma_X). `raw` may use eps
  /// arcs and un-merged marker arcs; it is normalized internally. `vars`
  /// names the variables whose markers appear in `raw`.
  static Result<Spanner> FromAutomaton(Nfa raw, VariableSet vars);

  const Nfa& raw() const { return raw_; }
  const Nfa& normalized() const { return normalized_; }
  const VariableSet& vars() const { return vars_; }
  uint32_t num_vars() const { return vars_.size(); }
  const std::string& pattern() const { return pattern_; }

  /// q of the normalized automaton.
  uint32_t NumStates() const { return normalized_.NumStates(); }

 private:
  Spanner() = default;

  std::string pattern_;
  VariableSet vars_;
  Nfa raw_;
  Nfa normalized_;
};

/// Thompson construction: compiles a validated regex AST into a raw NFA with
/// eps arcs and single-marker mark arcs. Fails with kInvalidArgument on an
/// AST with an unknown node kind (never aborts: the AST derives from user
/// input). Exposed for tests.
Result<Nfa> CompileRegexToNfa(const RegexNode& root);

}  // namespace slpspan

#endif  // SLPSPAN_SPANNER_SPANNER_H_
