// SymbolTable — interning of marker-set symbols over Sigma ∪ P(Gamma_X)
// (see spanner/symbol_table.h).
#include "spanner/symbol_table.h"

namespace slpspan {

SymbolId SymbolTable::InternMask(MarkerMask mask) {
  SLPSPAN_CHECK(mask != 0);
  auto it = ids_.find(mask);
  if (it != ids_.end()) return it->second;
  const SymbolId id = kFirstMarkerSymbol + static_cast<SymbolId>(masks_.size());
  masks_.push_back(mask);
  ids_.emplace(mask, id);
  return id;
}

MarkerMask SymbolTable::MaskOf(SymbolId s) const {
  SLPSPAN_CHECK(IsMaskSymbol(s));
  const uint32_t idx = s - kFirstMarkerSymbol;
  SLPSPAN_CHECK(idx < masks_.size());
  return masks_[idx];
}

std::vector<SymbolId> MarkedWord(const std::vector<SymbolId>& doc,
                                 const MarkerSeq& markers, SymbolTable* table) {
  SLPSPAN_CHECK(markers.empty() || markers.MaxPos() <= doc.size() + 1);
  std::vector<SymbolId> out;
  out.reserve(doc.size() + markers.NumPositions());
  size_t next = 0;
  const auto& entries = markers.entries();
  for (uint64_t pos = 1; pos <= doc.size() + 1; ++pos) {
    if (next < entries.size() && entries[next].pos == pos) {
      out.push_back(table->InternMask(entries[next].marks));
      ++next;
    }
    if (pos <= doc.size()) out.push_back(doc[pos - 1]);
  }
  return out;
}

std::vector<SymbolId> ExtractDocument(const std::vector<SymbolId>& marked) {
  std::vector<SymbolId> out;
  out.reserve(marked.size());
  for (SymbolId s : marked) {
    if (!SymbolTable::IsMaskSymbol(s)) out.push_back(s);
  }
  return out;
}

MarkerSeq ExtractMarkers(const std::vector<SymbolId>& marked, const SymbolTable& table) {
  std::vector<PosMark> entries;
  uint64_t pos = 1;
  MarkerMask pending = 0;
  for (SymbolId s : marked) {
    if (SymbolTable::IsMaskSymbol(s)) {
      pending |= table.MaskOf(s);
    } else {
      if (pending != 0) {
        entries.push_back({pos, pending});
        pending = 0;
      }
      ++pos;
    }
  }
  if (pending != 0) entries.push_back({pos, pending});
  return MarkerSeq(std::move(entries));
}

}  // namespace slpspan
