// Reference evaluator on *uncompressed* documents.
//
// Implements all four evaluation tasks by direct automaton simulation /
// product-DAG construction over the plain document — the classical approach
// the paper compares against ([9], [2]; see DESIGN.md §4(2) for the
// documented substitution of the constant-delay machinery):
//   * non-emptiness  O(d * |M|)          (state-set simulation)
//   * model checking O((d + |X|) * |M|)  (simulation on the marked word)
//   * computation    O(d * q * r * |X|)  (forward DP with sorted lists)
//   * enumeration    O(d * |M|) preprocessing, O(d) worst-case delay
//                    (DFS over the trimmed product DAG)
//
// Doubles as the ground-truth oracle for the compressed algorithms in tests.

#ifndef SLPSPAN_SPANNER_REF_EVAL_H_
#define SLPSPAN_SPANNER_REF_EVAL_H_

#include <optional>
#include <string_view>
#include <vector>

#include "spanner/marker.h"
#include "spanner/nfa.h"
#include "spanner/spanner.h"

namespace slpspan {

/// Pull-style enumerator over the product DAG of (automaton x document).
/// RocksDB-iterator usage:
///   for (RefEnumerator e = ref.Enumerate(doc); e.Valid(); e.Next()) use(e.Current());
class RefEnumerator {
 public:
  bool Valid() const { return valid_; }
  void Next();

  /// Current result as a marker set / span-tuple (Valid() required).
  const MarkerSeq& CurrentMarkers() const {
    SLPSPAN_DCHECK(valid_);
    return current_;
  }
  SpanTuple Current() const;

 private:
  friend class RefEvaluator;
  RefEnumerator(const Nfa* nfa, std::vector<SymbolId> word, uint32_t num_vars);

  struct Move {
    MarkerMask mask;  // 0 = plain char move
    StateId to;
  };
  struct Frame {
    StateId state;
    std::vector<Move> moves;
    size_t next_move;
  };

  bool CoAccessible(uint64_t pos, StateId s) const {
    return (coacc_[pos][s >> 6] >> (s & 63)) & 1;
  }
  void BuildMoves(Frame* f, uint64_t pos) const;
  /// Advances the DFS until the next accepting leaf or exhaustion.
  void Advance();
  void AssembleCurrent();

  const Nfa* nfa_ = nullptr;
  std::vector<SymbolId> word_;  // document + sentinel
  uint32_t num_vars_ = 0;
  std::vector<std::vector<uint64_t>> coacc_;  // [pos][state words]
  std::vector<Frame> stack_;                  // stack_[i] is at position i
  std::vector<PosMark> marks_;                // masks taken along current path
  MarkerSeq current_;
  bool valid_ = false;
};

/// Evaluator over plain byte documents.
class RefEvaluator {
 public:
  /// `determinize` applies to the automaton used for computation/enumeration;
  /// with a DFA the enumeration is duplicate-free (mirrors Theorem 8.10's
  /// requirement).
  explicit RefEvaluator(const Spanner& spanner, bool determinize = true);

  bool CheckNonEmptiness(std::string_view doc) const;
  bool CheckModel(std::string_view doc, const SpanTuple& t) const;

  /// All results as marker sets, ⪯-sorted and duplicate-free.
  std::vector<MarkerSeq> ComputeAllMarkers(std::string_view doc) const;
  std::vector<SpanTuple> ComputeAll(std::string_view doc) const;

  RefEnumerator Enumerate(std::string_view doc) const;

  uint32_t num_vars() const { return num_vars_; }
  const Nfa& eval_nfa() const { return eval_nfa_; }

 private:
  uint32_t num_vars_;
  Nfa nonempty_nfa_;  // markers projected away, then normalized: char arcs only
  Nfa model_nfa_;     // normalized (no sentinel)
  Nfa eval_nfa_;      // normalized + sentinel (+ determinization)
};

}  // namespace slpspan

#endif  // SLPSPAN_SPANNER_REF_EVAL_H_
