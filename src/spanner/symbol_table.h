// Interning of marker-set symbols.
//
// Subword-marked words are words over Sigma ∪ P(Gamma_X). Plain symbols use
// ids 0..256 (bytes + sentinel, see slp/slp.h); every distinct marker set
// that needs to appear *inside a document* (the spliced SLPs of model
// checking, explicit marked words in tests and the reference evaluator) is
// interned here and receives an id >= kFirstMarkerSymbol.

#ifndef SLPSPAN_SPANNER_SYMBOL_TABLE_H_
#define SLPSPAN_SPANNER_SYMBOL_TABLE_H_

#include <unordered_map>
#include <vector>

#include "slp/slp.h"
#include "spanner/marker.h"
#include "spanner/variables.h"

namespace slpspan {

/// Bidirectional map MarkerMask <-> SymbolId (>= kFirstMarkerSymbol).
class SymbolTable {
 public:
  /// Returns the symbol id for `mask` (non-zero), interning it if new.
  SymbolId InternMask(MarkerMask mask);

  static bool IsMaskSymbol(SymbolId s) { return s >= kFirstMarkerSymbol; }

  /// Mask of an interned symbol; CHECK-fails for unknown ids.
  MarkerMask MaskOf(SymbolId s) const;

  uint32_t NumMasks() const { return static_cast<uint32_t>(masks_.size()); }

 private:
  std::vector<MarkerMask> masks_;
  std::unordered_map<MarkerMask, SymbolId> ids_;
};

/// Builds the subword-marked word m(doc, markers) as a symbol sequence with
/// interned mask symbols. `markers` positions must be <= |doc| + 1.
std::vector<SymbolId> MarkedWord(const std::vector<SymbolId>& doc,
                                 const MarkerSeq& markers, SymbolTable* table);

/// Inverse projections on symbol sequences (paper's e(.) and p(.)):
/// ExtractDocument removes mask symbols; ExtractMarkers collects them with
/// their document positions.
std::vector<SymbolId> ExtractDocument(const std::vector<SymbolId>& marked);
MarkerSeq ExtractMarkers(const std::vector<SymbolId>& marked, const SymbolTable& table);

}  // namespace slpspan

#endif  // SLPSPAN_SPANNER_SYMBOL_TABLE_H_
