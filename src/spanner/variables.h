// Variable registry and marker bit-encoding.
//
// The marker alphabet Gamma_X = { open(x), close(x) : x in X } is packed into
// a 64-bit mask: bit 2v encodes the open marker of variable v, bit 2v+1 its
// close marker. A symbol from P(Gamma_X) — the paper's merged marker sets —
// is therefore a single MarkerMask, which caps |X| at 32 variables
// (Status::kNotSupported beyond that).

#ifndef SLPSPAN_SPANNER_VARIABLES_H_
#define SLPSPAN_SPANNER_VARIABLES_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "spanner/span.h"
#include "util/status.h"

namespace slpspan {

/// One symbol from P(Gamma_X): a set of open/close markers.
using MarkerMask = uint64_t;

constexpr uint32_t kMaxVariables = 32;

inline MarkerMask OpenMarker(VarId v) { return MarkerMask{1} << (2 * v); }
inline MarkerMask CloseMarker(VarId v) { return MarkerMask{1} << (2 * v + 1); }
inline bool HasOpen(MarkerMask m, VarId v) { return (m >> (2 * v)) & 1; }
inline bool HasClose(MarkerMask m, VarId v) { return (m >> (2 * v + 1)) & 1; }

/// Total order on individual markers used by the paper's order on marker
/// sets; we order by bit index (open(x0) < close(x0) < open(x1) < ...).
///
/// CompareMasks compares two marker sets occurring at the *same* document
/// position as the paper compares the words <<Lambda>>: element-wise in
/// ascending marker order, and if one set is a proper prefix of the other,
/// the *prefix is larger* (this inversion is what makes the join operator
/// monotone; see Theorem 7.1's proof and marker.h).
int CompareMasks(MarkerMask a, MarkerMask b);

/// Registry of variable names; ids are dense and ordered by first Intern.
class VariableSet {
 public:
  /// Returns the id for `name`, creating it if unseen. Fails with
  /// kNotSupported once kMaxVariables is exceeded.
  Result<VarId> Intern(std::string_view name);

  std::optional<VarId> Find(std::string_view name) const;

  const std::string& Name(VarId v) const {
    SLPSPAN_CHECK(v < names_.size());
    return names_[v];
  }

  uint32_t size() const { return static_cast<uint32_t>(names_.size()); }

  /// Renders a marker set, e.g. "{<x, >y}" for {open(x), close(y)}.
  std::string MaskToString(MarkerMask m) const;

 private:
  std::vector<std::string> names_;
};

}  // namespace slpspan

#endif  // SLPSPAN_SPANNER_VARIABLES_H_
