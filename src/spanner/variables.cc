// VariableSet — named capture variables, their dense VarId mapping and the
// marker alphabet Gamma_X derived from them.
#include "spanner/variables.h"

#include <bit>
#include <sstream>

namespace slpspan {

int CompareMasks(MarkerMask a, MarkerMask b) {
  if (a == b) return 0;
  while (a != 0 && b != 0) {
    const int bit_a = std::countr_zero(a);
    const int bit_b = std::countr_zero(b);
    if (bit_a != bit_b) return bit_a < bit_b ? -1 : 1;
    a &= a - 1;
    b &= b - 1;
  }
  // One is a proper prefix of the other; the prefix is *larger*.
  return a == 0 ? 1 : -1;
}

Result<VarId> VariableSet::Intern(std::string_view name) {
  if (auto found = Find(name)) return *found;
  if (names_.size() >= kMaxVariables) {
    return Status::NotSupported("at most 32 span variables are supported");
  }
  names_.emplace_back(name);
  return static_cast<VarId>(names_.size() - 1);
}

std::optional<VarId> VariableSet::Find(std::string_view name) const {
  for (VarId v = 0; v < names_.size(); ++v) {
    if (names_[v] == name) return v;
  }
  return std::nullopt;
}

std::string VariableSet::MaskToString(MarkerMask m) const {
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (int bit = 0; bit < 64; ++bit) {
    if (!((m >> bit) & 1)) continue;
    if (!first) os << ", ";
    first = false;
    const VarId v = static_cast<VarId>(bit / 2);
    const bool open = bit % 2 == 0;
    os << (open ? "<" : ">");
    if (v < names_.size()) {
      os << names_[v];
    } else {
      os << "v" << v;
    }
  }
  os << "}";
  return os.str();
}

}  // namespace slpspan
