// Span and SpanTuple: the extracted-relation value types, their comparisons
// and printing.
#include "spanner/span.h"

#include <sstream>

#include "spanner/variables.h"

namespace slpspan {

std::string Span::ToString() const {
  std::ostringstream os;
  os << "[" << begin << "," << end << ">";
  return os.str();
}

bool SpanTuple::operator<(const SpanTuple& o) const {
  SLPSPAN_DCHECK(spans_.size() == o.spans_.size());
  for (size_t v = 0; v < spans_.size(); ++v) {
    const auto& a = spans_[v];
    const auto& b = o.spans_[v];
    if (a.has_value() != b.has_value()) return !a.has_value();  // ⊥ sorts first
    if (a.has_value() && !(*a == *b)) return *a < *b;
  }
  return false;
}

std::string SpanTuple::ToString(const VariableSet& vars) const {
  std::ostringstream os;
  os << "(";
  for (VarId v = 0; v < spans_.size(); ++v) {
    if (v > 0) os << ", ";
    os << vars.Name(v) << "=";
    if (spans_[v].has_value()) {
      os << spans_[v]->ToString();
    } else {
      os << "_";
    }
  }
  os << ")";
  return os.str();
}

}  // namespace slpspan
