// Spanner algebra on regular spanners — union and projection.
//
// The framework of [Fagin et al. 2015] composes extracted relations with
// relational algebra; regular spanners are closed under union and projection
// at the *automaton* level, which lets the whole composed query run directly
// on the compressed document. Both operations work on the raw automata and
// re-normalize, so their results are ordinary Spanners accepted by every
// evaluator in this library.
//
//   * Union: ⟦A ∪ B⟧(D) = ⟦A⟧(D) ∪ ⟦B⟧(D). Variables are matched by name;
//     a variable used by only one side is simply unset (⊥) in the other
//     side's tuples (schemaless semantics, paper Section 1.2).
//   * Projection: ⟦π_Y A⟧(D) = { t|_Y : t ∈ ⟦A⟧(D) } — markers of dropped
//     variables are erased from the transitions; duplicates introduced by
//     the restriction collapse under the set semantics automatically.

#ifndef SLPSPAN_SPANNER_ALGEBRA_H_
#define SLPSPAN_SPANNER_ALGEBRA_H_

#include <string>
#include <vector>

#include "spanner/spanner.h"
#include "util/status.h"

namespace slpspan {

/// Union of two spanners over the same terminal alphabet (the caller is
/// responsible for alphabet compatibility; variables merge by name). Fails
/// if the merged variable set exceeds kMaxVariables.
Result<Spanner> SpannerUnion(const Spanner& a, const Spanner& b);

/// Projection onto the named variables. Unknown names fail with
/// kInvalidArgument. The result's VarIds are renumbered densely in the order
/// given by `keep`.
Result<Spanner> SpannerProject(const Spanner& sp, const std::vector<std::string>& keep);

}  // namespace slpspan

#endif  // SLPSPAN_SPANNER_ALGEBRA_H_
