// Nfa storage plus normalization (eps-removal, marker-arc merging) and
// trimming to the useful states.
#include "spanner/nfa.h"

#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace slpspan {

bool Nfa::HasAcceptingState() const {
  return std::any_of(accepting_.begin(), accepting_.end(), [](bool b) { return b; });
}

uint64_t Nfa::NumTransitions() const {
  uint64_t total = 0;
  for (StateId s = 0; s < NumStates(); ++s) {
    total += char_arcs_[s].size() + mark_arcs_[s].size() + eps_arcs_[s].size();
  }
  return total;
}

bool Nfa::HasEpsArcs() const {
  for (const auto& v : eps_arcs_) {
    if (!v.empty()) return true;
  }
  return false;
}

bool Nfa::IsDeterministic() const {
  if (HasEpsArcs()) return false;
  for (StateId s = 0; s < NumStates(); ++s) {
    std::set<SymbolId> syms;
    for (const CharArc& a : char_arcs_[s]) {
      if (!syms.insert(a.sym).second) return false;
    }
    std::set<MarkerMask> masks;
    for (const MarkArc& a : mark_arcs_[s]) {
      if (!masks.insert(a.mask).second) return false;
    }
  }
  return true;
}

std::string Nfa::DebugString() const {
  std::ostringstream os;
  os << "Nfa{" << NumStates() << " states, " << NumTransitions() << " arcs}\n";
  for (StateId s = 0; s < NumStates(); ++s) {
    os << "  q" << s << (s == 0 ? " (start)" : "") << (accepting_[s] ? " (accept)" : "")
       << ":\n";
    for (const CharArc& a : char_arcs_[s]) {
      os << "    --sym(" << a.sym << ")--> q" << a.to << "\n";
    }
    for (const MarkArc& a : mark_arcs_[s]) {
      os << "    --mask(0x" << std::hex << a.mask << std::dec << ")--> q" << a.to
         << "\n";
    }
    for (StateId t : eps_arcs_[s]) {
      os << "    --eps--> q" << t << "\n";
    }
  }
  return os.str();
}

namespace {

// (state, collected marker mask) pairs reachable from one state via eps and
// mark arcs; paths that would repeat a marker are pruned (they cannot be part
// of a well-formed subword-marked word).
std::vector<std::pair<StateId, MarkerMask>> MarkerClosure(const Nfa& nfa, StateId from) {
  std::vector<std::pair<StateId, MarkerMask>> visited;
  std::set<std::pair<StateId, MarkerMask>> seen;
  std::deque<std::pair<StateId, MarkerMask>> queue;
  queue.push_back({from, 0});
  seen.insert({from, 0});
  while (!queue.empty()) {
    auto [q, m] = queue.front();
    queue.pop_front();
    visited.push_back({q, m});
    for (StateId t : nfa.EpsArcsFrom(q)) {
      if (seen.insert({t, m}).second) queue.push_back({t, m});
    }
    for (const Nfa::MarkArc& a : nfa.MarkArcsFrom(q)) {
      if ((m & a.mask) != 0) continue;  // marker repetition — dead path
      const MarkerMask nm = m | a.mask;
      if (seen.insert({a.to, nm}).second) queue.push_back({a.to, nm});
    }
  }
  return visited;
}

}  // namespace

Nfa Normalize(const Nfa& raw) {
  Nfa out;
  while (out.NumStates() < raw.NumStates()) out.AddState();

  // Pass 1: per-state eps closure effects — merged char arcs and absorbed
  // acceptance.
  std::vector<bool> continues(raw.NumStates(), false);  // has char arc or accepts
  std::vector<std::vector<std::pair<StateId, MarkerMask>>> closures(raw.NumStates());
  for (StateId p = 0; p < raw.NumStates(); ++p) {
    closures[p] = MarkerClosure(raw, p);
    std::set<std::pair<SymbolId, StateId>> char_added;
    bool accepting = raw.IsAccepting(p);
    for (const auto& [q, m] : closures[p]) {
      if (m != 0) continue;
      if (raw.IsAccepting(q)) accepting = true;
      for (const Nfa::CharArc& a : raw.CharArcsFrom(q)) {
        if (char_added.insert({a.sym, a.to}).second) {
          out.AddCharArc(p, a.sym, a.to);
        }
      }
    }
    out.SetAccepting(p, accepting);
    continues[p] = accepting || !char_added.empty();
  }

  // Pass 2: merged set transitions p --m--> q for every marker path with
  // content m. Arcs into states that can neither read a character nor accept
  // are dropped: they would only admit ill-formed words with two adjacent
  // set symbols, which never occur in subword-marked words.
  for (StateId p = 0; p < raw.NumStates(); ++p) {
    std::set<std::pair<MarkerMask, StateId>> mark_added;
    for (const auto& [q, m] : closures[p]) {
      if (m == 0 || !continues[q]) continue;
      if (mark_added.insert({m, q}).second) out.AddMarkArc(p, m, q);
    }
  }
  return out;
}

Nfa Trim(const Nfa& nfa) {
  SLPSPAN_CHECK(!nfa.HasEpsArcs());
  const uint32_t n = nfa.NumStates();

  std::vector<bool> fwd(n, false);
  {
    std::vector<StateId> stack{0};
    fwd[0] = true;
    while (!stack.empty()) {
      StateId s = stack.back();
      stack.pop_back();
      auto visit = [&](StateId t) {
        if (!fwd[t]) {
          fwd[t] = true;
          stack.push_back(t);
        }
      };
      for (const auto& a : nfa.CharArcsFrom(s)) visit(a.to);
      for (const auto& a : nfa.MarkArcsFrom(s)) visit(a.to);
    }
  }

  // Backward reachability needs reversed adjacency.
  std::vector<std::vector<StateId>> rev(n);
  for (StateId s = 0; s < n; ++s) {
    for (const auto& a : nfa.CharArcsFrom(s)) rev[a.to].push_back(s);
    for (const auto& a : nfa.MarkArcsFrom(s)) rev[a.to].push_back(s);
  }
  std::vector<bool> bwd(n, false);
  {
    std::vector<StateId> stack;
    for (StateId s = 0; s < n; ++s) {
      if (nfa.IsAccepting(s)) {
        bwd[s] = true;
        stack.push_back(s);
      }
    }
    while (!stack.empty()) {
      StateId s = stack.back();
      stack.pop_back();
      for (StateId t : rev[s]) {
        if (!bwd[t]) {
          bwd[t] = true;
          stack.push_back(t);
        }
      }
    }
  }

  std::vector<StateId> remap(n, UINT32_MAX);
  Nfa out;
  remap[0] = 0;  // start state always kept
  for (StateId s = 1; s < n; ++s) {
    if (fwd[s] && bwd[s]) remap[s] = out.AddState();
  }
  for (StateId s = 0; s < n; ++s) {
    if (remap[s] == UINT32_MAX) continue;
    out.SetAccepting(remap[s], nfa.IsAccepting(s));
    for (const auto& a : nfa.CharArcsFrom(s)) {
      if (remap[a.to] != UINT32_MAX) out.AddCharArc(remap[s], a.sym, remap[a.to]);
    }
    for (const auto& a : nfa.MarkArcsFrom(s)) {
      if (remap[a.to] != UINT32_MAX) out.AddMarkArc(remap[s], a.mask, remap[a.to]);
    }
  }
  return out;
}

Nfa AppendSentinel(const Nfa& nfa, SymbolId sentinel) {
  SLPSPAN_CHECK(!nfa.HasEpsArcs());
  Nfa out;
  while (out.NumStates() < nfa.NumStates()) out.AddState();
  for (StateId s = 0; s < nfa.NumStates(); ++s) {
    for (const auto& a : nfa.CharArcsFrom(s)) out.AddCharArc(s, a.sym, a.to);
    for (const auto& a : nfa.MarkArcsFrom(s)) out.AddMarkArc(s, a.mask, a.to);
  }
  const StateId fin = out.AddState();
  for (StateId s = 0; s < nfa.NumStates(); ++s) {
    if (nfa.IsAccepting(s)) out.AddCharArc(s, sentinel, fin);
  }
  out.SetAccepting(fin, true);
  return out;
}

Nfa ProjectMarkersToEps(const Nfa& nfa) {
  Nfa out;
  while (out.NumStates() < nfa.NumStates()) out.AddState();
  for (StateId s = 0; s < nfa.NumStates(); ++s) {
    out.SetAccepting(s, nfa.IsAccepting(s));
    for (const auto& a : nfa.CharArcsFrom(s)) out.AddCharArc(s, a.sym, a.to);
    for (const auto& a : nfa.MarkArcsFrom(s)) out.AddEpsArc(s, a.to);
    for (StateId t : nfa.EpsArcsFrom(s)) out.AddEpsArc(s, t);
  }
  return out;
}

Nfa Determinize(const Nfa& nfa, uint32_t max_states) {
  SLPSPAN_CHECK(!nfa.HasEpsArcs());
  using Subset = std::vector<StateId>;

  struct SubsetHash {
    size_t operator()(const Subset& s) const {
      uint64_t h = 1469598103934665603ull;
      for (StateId x : s) {
        h ^= x;
        h *= 1099511628211ull;
      }
      return static_cast<size_t>(h);
    }
  };

  Nfa out;
  std::unordered_map<Subset, StateId, SubsetHash> ids;
  std::vector<Subset> subsets;
  auto intern = [&](Subset s) -> StateId {
    auto it = ids.find(s);
    if (it != ids.end()) return it->second;
    const StateId id = subsets.empty() ? 0 : out.AddState();
    SLPSPAN_CHECK(out.NumStates() <= max_states);
    ids.emplace(s, id);
    subsets.push_back(std::move(s));
    return id;
  };

  intern(Subset{0});
  for (StateId cur = 0; cur < subsets.size(); ++cur) {
    // NOTE: `subsets` may grow; index access stays valid, references do not.
    const Subset members = subsets[cur];
    bool accepting = false;
    std::map<SymbolId, std::set<StateId>> by_sym;
    std::map<MarkerMask, std::set<StateId>> by_mask;
    for (StateId m : members) {
      accepting = accepting || nfa.IsAccepting(m);
      for (const auto& a : nfa.CharArcsFrom(m)) by_sym[a.sym].insert(a.to);
      for (const auto& a : nfa.MarkArcsFrom(m)) by_mask[a.mask].insert(a.to);
    }
    out.SetAccepting(cur, accepting);
    for (const auto& [sym, tos] : by_sym) {
      out.AddCharArc(cur, sym, intern(Subset(tos.begin(), tos.end())));
    }
    for (const auto& [mask, tos] : by_mask) {
      out.AddMarkArc(cur, mask, intern(Subset(tos.begin(), tos.end())));
    }
  }
  return out;
}

bool AcceptsSymbols(const Nfa& nfa, const std::vector<SymbolId>& word,
                    const SymbolTable* table) {
  auto eps_close = [&nfa](std::set<StateId>& states) {
    std::vector<StateId> stack(states.begin(), states.end());
    while (!stack.empty()) {
      StateId s = stack.back();
      stack.pop_back();
      for (StateId t : nfa.EpsArcsFrom(s)) {
        if (states.insert(t).second) stack.push_back(t);
      }
    }
  };

  std::set<StateId> cur{0};
  eps_close(cur);
  for (SymbolId sym : word) {
    std::set<StateId> next;
    if (SymbolTable::IsMaskSymbol(sym)) {
      SLPSPAN_CHECK(table != nullptr);
      const MarkerMask mask = table->MaskOf(sym);
      for (StateId s : cur) {
        for (const auto& a : nfa.MarkArcsFrom(s)) {
          if (a.mask == mask) next.insert(a.to);
        }
      }
    } else {
      for (StateId s : cur) {
        for (const auto& a : nfa.CharArcsFrom(s)) {
          if (a.sym == sym) next.insert(a.to);
        }
      }
    }
    eps_close(next);
    cur.swap(next);
    if (cur.empty()) return false;
  }
  for (StateId s : cur) {
    if (nfa.IsAccepting(s)) return true;
  }
  return false;
}

}  // namespace slpspan
