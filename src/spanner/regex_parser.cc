// Recursive-descent parser for the spanner regex dialect; all failures on
// user-supplied patterns surface as Status, never aborts.
#include "spanner/regex_parser.h"

#include <cctype>
#include <string>

namespace slpspan {

ByteSet MakeAlphabet(std::string_view alphabet) {
  ByteSet set;
  for (unsigned char c : alphabet) set.set(c);
  return set;
}

namespace {

class Parser {
 public:
  Parser(std::string_view pattern, const ByteSet& alphabet, VariableSet* vars)
      : text_(pattern), alphabet_(alphabet), vars_(vars) {}

  Result<RegexPtr> Parse() {
    Result<RegexPtr> e = ParseExpr();
    if (!e.ok()) return e;
    if (pos_ != text_.size()) return Err("unexpected '" + std::string(1, Peek()) + "'");
    return e;
  }

 private:
  Status Err(const std::string& msg) const {
    return Status::ParseError(msg + " at offset " + std::to_string(pos_));
  }

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return AtEnd() ? '\0' : text_[pos_]; }
  char Take() { return text_[pos_++]; }

  Result<RegexPtr> ParseExpr() {
    std::vector<RegexPtr> alts;
    while (true) {
      Result<RegexPtr> term = ParseTerm();
      if (!term.ok()) return term;
      alts.push_back(std::move(term).value());
      if (Peek() == '|') {
        ++pos_;
        continue;
      }
      break;
    }
    return RegexNode::Union(std::move(alts));
  }

  Result<RegexPtr> ParseTerm() {
    std::vector<RegexPtr> parts;
    while (!AtEnd() && Peek() != '|' && Peek() != ')' && Peek() != '}') {
      Result<RegexPtr> f = ParseFactor();
      if (!f.ok()) return f;
      parts.push_back(std::move(f).value());
    }
    return RegexNode::Concat(std::move(parts));
  }

  Result<RegexPtr> ParseFactor() {
    Result<RegexPtr> atom = ParseAtom();
    if (!atom.ok()) return atom;
    RegexPtr node = std::move(atom).value();
    while (!AtEnd()) {
      const char c = Peek();
      if (c == '*') {
        node = RegexNode::Star(std::move(node));
      } else if (c == '+') {
        node = RegexNode::Plus(std::move(node));
      } else if (c == '?') {
        node = RegexNode::Optional(std::move(node));
      } else {
        break;
      }
      ++pos_;
    }
    return node;
  }

  Result<RegexPtr> ParseAtom() {
    if (AtEnd()) return Err("expected atom");
    const char c = Peek();
    if (c == '(') {
      ++pos_;
      Result<RegexPtr> inner = ParseExpr();
      if (!inner.ok()) return inner;
      if (Peek() != ')') return Err("expected ')'");
      ++pos_;
      return inner;
    }
    if (c == '[') return ParseClass();
    if (c == '.') {
      ++pos_;
      if (alphabet_.none()) return Err("'.' used with empty alphabet");
      return RegexNode::Class(alphabet_);
    }
    if (c == '\\') return ParseEscape();
    if (c == '*' || c == '+' || c == '?' || c == ')' || c == '|' || c == '{' ||
        c == '}' || c == ']') {
      return Err(std::string("unexpected '") + c + "'");
    }
    // Capture lookahead: IDENT '{'.
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t end = pos_;
      while (end < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[end])) ||
              text_[end] == '_')) {
        ++end;
      }
      if (end < text_.size() && text_[end] == '{') {
        const std::string name(text_.substr(pos_, end - pos_));
        pos_ = end + 1;  // consume IDENT and '{'
        Result<VarId> var = vars_->Intern(name);
        if (!var.ok()) return var.status();
        Result<RegexPtr> inner = ParseExpr();
        if (!inner.ok()) return inner;
        if (Peek() != '}') return Err("expected '}' closing capture " + name);
        ++pos_;
        return RegexNode::Capture(var.value(), std::move(inner).value());
      }
    }
    ++pos_;
    return MakeLiteral(static_cast<unsigned char>(c));
  }

  Result<RegexPtr> MakeLiteral(unsigned char c) {
    if (!alphabet_.test(c)) {
      return Err(std::string("literal '") + static_cast<char>(c) +
                 "' not in declared alphabet");
    }
    return RegexNode::Literal(c);
  }

  Result<RegexPtr> ParseEscape() {
    ++pos_;  // consume backslash
    if (AtEnd()) return Err("dangling escape");
    char c = Take();
    switch (c) {
      case 'n': c = '\n'; break;
      case 't': c = '\t'; break;
      case 'r': c = '\r'; break;
      case '0': c = '\0'; break;
      default: break;  // escaped metacharacter / literal
    }
    return MakeLiteral(static_cast<unsigned char>(c));
  }

  Result<RegexPtr> ParseClass() {
    ++pos_;  // consume '['
    bool negate = false;
    if (Peek() == '^') {
      negate = true;
      ++pos_;
    }
    ByteSet set;
    bool any = false;
    while (!AtEnd() && Peek() != ']') {
      unsigned char lo;
      if (Peek() == '\\') {
        ++pos_;
        if (AtEnd()) return Err("dangling escape in class");
        char e = Take();
        switch (e) {
          case 'n': e = '\n'; break;
          case 't': e = '\t'; break;
          case 'r': e = '\r'; break;
          default: break;
        }
        lo = static_cast<unsigned char>(e);
      } else {
        lo = static_cast<unsigned char>(Take());
      }
      unsigned char hi = lo;
      if (Peek() == '-' && pos_ + 1 < text_.size() && text_[pos_ + 1] != ']') {
        ++pos_;  // consume '-'
        hi = static_cast<unsigned char>(Take());
        if (hi < lo) return Err("inverted range in class");
      }
      for (unsigned int b = lo; b <= hi; ++b) {
        set.set(b);
        any = true;
      }
    }
    if (Peek() != ']') return Err("expected ']'");
    ++pos_;
    if (!any && !negate) return Err("empty character class");
    ByteSet result = negate ? (~set & alphabet_) : (set & alphabet_);
    if (result.none()) return Err("character class matches nothing in the alphabet");
    return RegexNode::Class(result);
  }

  std::string_view text_;
  ByteSet alphabet_;
  VariableSet* vars_;
  size_t pos_ = 0;
};

}  // namespace

Result<RegexPtr> ParseRegex(std::string_view pattern, const ByteSet& alphabet,
                            VariableSet* vars) {
  return Parser(pattern, alphabet, vars).Parse();
}

}  // namespace slpspan
