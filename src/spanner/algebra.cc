// Spanner algebra on regular spanners — union and projection over compiled
// automata (see spanner/algebra.h).
#include "spanner/algebra.h"

#include <bit>

namespace slpspan {

namespace {

/// Rewrites a mask under a variable-id mapping; `mapping[v] == kInvalidNt`
/// drops the variable's markers.
MarkerMask RemapMask(MarkerMask mask, const std::vector<uint32_t>& mapping) {
  MarkerMask out = 0;
  while (mask != 0) {
    const int bit = std::countr_zero(mask);
    mask &= mask - 1;
    const VarId v = static_cast<VarId>(bit / 2);
    SLPSPAN_CHECK(v < mapping.size());
    if (mapping[v] == UINT32_MAX) continue;
    out |= MarkerMask{1} << (2 * mapping[v] + (bit % 2));
  }
  return out;
}

/// Copies `src` into `dst` with state offset and mask remapping; marker arcs
/// whose mask remaps to the empty set become eps arcs.
void ImportAutomaton(const Nfa& src, const std::vector<uint32_t>& var_mapping,
                     Nfa* dst, StateId offset) {
  for (StateId s = 0; s < src.NumStates(); ++s) {
    if (src.IsAccepting(s)) dst->SetAccepting(offset + s, true);
    for (const Nfa::CharArc& a : src.CharArcsFrom(s)) {
      dst->AddCharArc(offset + s, a.sym, offset + a.to);
    }
    for (const Nfa::MarkArc& a : src.MarkArcsFrom(s)) {
      const MarkerMask mask = RemapMask(a.mask, var_mapping);
      if (mask == 0) {
        dst->AddEpsArc(offset + s, offset + a.to);
      } else {
        dst->AddMarkArc(offset + s, mask, offset + a.to);
      }
    }
    for (StateId t : src.EpsArcsFrom(s)) {
      dst->AddEpsArc(offset + s, offset + t);
    }
  }
}

}  // namespace

Result<Spanner> SpannerUnion(const Spanner& a, const Spanner& b) {
  // Merge the variable sets by name; each side gets an id mapping.
  VariableSet merged;
  std::vector<uint32_t> map_a(a.num_vars()), map_b(b.num_vars());
  for (VarId v = 0; v < a.num_vars(); ++v) {
    Result<VarId> id = merged.Intern(a.vars().Name(v));
    if (!id.ok()) return id.status();
    map_a[v] = id.value();
  }
  for (VarId v = 0; v < b.num_vars(); ++v) {
    Result<VarId> id = merged.Intern(b.vars().Name(v));
    if (!id.ok()) return id.status();
    map_b[v] = id.value();
  }

  // Fresh start state with eps arcs into both copies.
  Nfa out;  // state 0 = start
  const StateId base_a = out.NumStates();
  for (StateId s = 0; s < a.raw().NumStates(); ++s) out.AddState();
  const StateId base_b = out.NumStates();
  for (StateId s = 0; s < b.raw().NumStates(); ++s) out.AddState();
  ImportAutomaton(a.raw(), map_a, &out, base_a);
  ImportAutomaton(b.raw(), map_b, &out, base_b);
  out.AddEpsArc(0, base_a);  // raw automata start at their state 0
  out.AddEpsArc(0, base_b);

  return Spanner::FromAutomaton(std::move(out), std::move(merged));
}

Result<Spanner> SpannerProject(const Spanner& sp,
                               const std::vector<std::string>& keep) {
  VariableSet projected;
  std::vector<uint32_t> mapping(sp.num_vars(), UINT32_MAX);
  for (const std::string& name : keep) {
    const auto old_id = sp.vars().Find(name);
    if (!old_id.has_value()) {
      return Status::InvalidArgument("projection variable not in spanner: " + name);
    }
    Result<VarId> new_id = projected.Intern(name);
    if (!new_id.ok()) return new_id.status();
    mapping[*old_id] = new_id.value();
  }

  Nfa out;  // state 0 = start, aligned with sp.raw()'s start
  for (StateId s = 1; s < sp.raw().NumStates(); ++s) out.AddState();
  ImportAutomaton(sp.raw(), mapping, &out, 0);
  return Spanner::FromAutomaton(std::move(out), std::move(projected));
}

}  // namespace slpspan
