// Regex AST nodes: construction helpers, variable-usage validation and
// debug printing.
#include "spanner/regex_ast.h"

#include <sstream>

namespace slpspan {

RegexPtr RegexNode::Epsilon() {
  auto n = std::make_unique<RegexNode>();
  n->kind = Kind::kEpsilon;
  return n;
}

RegexPtr RegexNode::Class(const ByteSet& set) {
  auto n = std::make_unique<RegexNode>();
  n->kind = Kind::kCharClass;
  n->cls = set;
  return n;
}

RegexPtr RegexNode::Literal(unsigned char c) {
  ByteSet s;
  s.set(c);
  return Class(s);
}

RegexPtr RegexNode::Concat(std::vector<RegexPtr> parts) {
  if (parts.empty()) return Epsilon();
  if (parts.size() == 1) return std::move(parts[0]);
  auto n = std::make_unique<RegexNode>();
  n->kind = Kind::kConcat;
  n->children = std::move(parts);
  return n;
}

RegexPtr RegexNode::Union(std::vector<RegexPtr> alts) {
  SLPSPAN_CHECK(!alts.empty());
  if (alts.size() == 1) return std::move(alts[0]);
  auto n = std::make_unique<RegexNode>();
  n->kind = Kind::kUnion;
  n->children = std::move(alts);
  return n;
}

namespace {
RegexPtr Unary(RegexNode::Kind kind, RegexPtr inner) {
  auto n = std::make_unique<RegexNode>();
  n->kind = kind;
  n->children.push_back(std::move(inner));
  return n;
}
}  // namespace

RegexPtr RegexNode::Star(RegexPtr inner) { return Unary(Kind::kStar, std::move(inner)); }
RegexPtr RegexNode::Plus(RegexPtr inner) { return Unary(Kind::kPlus, std::move(inner)); }
RegexPtr RegexNode::Optional(RegexPtr inner) {
  return Unary(Kind::kOptional, std::move(inner));
}

RegexPtr RegexNode::Capture(VarId var, RegexPtr inner) {
  auto n = Unary(Kind::kCapture, std::move(inner));
  n->var = var;
  return n;
}

Status ValidateVariableUsage(const RegexNode& node, VarUsage* may_use) {
  *may_use = 0;
  switch (node.kind) {
    case RegexNode::Kind::kEpsilon:
    case RegexNode::Kind::kCharClass:
      return Status::OK();
    case RegexNode::Kind::kStar:
    case RegexNode::Kind::kPlus: {
      VarUsage inner = 0;
      Status st = ValidateVariableUsage(*node.children[0], &inner);
      if (!st.ok()) return st;
      if (inner != 0) {
        return Status::InvalidArgument(
            "variable capture under * or + would repeat a marker");
      }
      return Status::OK();
    }
    case RegexNode::Kind::kOptional:
      return ValidateVariableUsage(*node.children[0], may_use);
    case RegexNode::Kind::kConcat: {
      for (const RegexPtr& child : node.children) {
        VarUsage inner = 0;
        Status st = ValidateVariableUsage(*child, &inner);
        if (!st.ok()) return st;
        if ((*may_use & inner) != 0) {
          return Status::InvalidArgument(
              "variable may be captured twice in one concatenation");
        }
        *may_use |= inner;
      }
      return Status::OK();
    }
    case RegexNode::Kind::kUnion: {
      for (const RegexPtr& child : node.children) {
        VarUsage inner = 0;
        Status st = ValidateVariableUsage(*child, &inner);
        if (!st.ok()) return st;
        *may_use |= inner;
      }
      return Status::OK();
    }
    case RegexNode::Kind::kCapture: {
      VarUsage inner = 0;
      Status st = ValidateVariableUsage(*node.children[0], &inner);
      if (!st.ok()) return st;
      const VarUsage self = VarUsage{1} << node.var;
      if ((inner & self) != 0) {
        return Status::InvalidArgument("variable captured inside itself");
      }
      *may_use = inner | self;
      return Status::OK();
    }
  }
  return Status::InvalidArgument("corrupt regex node");
}

namespace {

void Render(const RegexNode& node, const VariableSet& vars, std::ostringstream& os) {
  switch (node.kind) {
    case RegexNode::Kind::kEpsilon:
      os << "()";
      break;
    case RegexNode::Kind::kCharClass: {
      const size_t count = node.cls.count();
      if (count == 1) {
        for (int c = 0; c < 256; ++c) {
          if (node.cls.test(c)) os << static_cast<char>(c);
        }
      } else {
        os << "[";
        for (int c = 0; c < 256; ++c) {
          if (node.cls.test(c)) os << static_cast<char>(c);
        }
        os << "]";
      }
      break;
    }
    case RegexNode::Kind::kConcat:
      for (const auto& c : node.children) Render(*c, vars, os);
      break;
    case RegexNode::Kind::kUnion:
      os << "(";
      for (size_t i = 0; i < node.children.size(); ++i) {
        if (i > 0) os << "|";
        Render(*node.children[i], vars, os);
      }
      os << ")";
      break;
    case RegexNode::Kind::kStar:
      os << "(";
      Render(*node.children[0], vars, os);
      os << ")*";
      break;
    case RegexNode::Kind::kPlus:
      os << "(";
      Render(*node.children[0], vars, os);
      os << ")+";
      break;
    case RegexNode::Kind::kOptional:
      os << "(";
      Render(*node.children[0], vars, os);
      os << ")?";
      break;
    case RegexNode::Kind::kCapture:
      os << vars.Name(node.var) << "{";
      Render(*node.children[0], vars, os);
      os << "}";
      break;
  }
}

}  // namespace

std::string RegexToString(const RegexNode& node, const VariableSet& vars) {
  std::ostringstream os;
  Render(node, vars, os);
  return os.str();
}

}  // namespace slpspan
