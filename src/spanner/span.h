// Spans and span-tuples — paper Section 3.
//
// A span [b, e> of a document D selects the substring from position b to
// position e-1 (1-based, half-open, b <= e; empty spans b == e are allowed).
// An (X, D)-tuple is a *partial* map from variables to spans; unset variables
// model the paper's schemaless / non-functional semantics.

#ifndef SLPSPAN_SPANNER_SPAN_H_
#define SLPSPAN_SPANNER_SPAN_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/check.h"

namespace slpspan {

class VariableSet;

/// Variable id within one VariableSet (dense, 0-based).
using VarId = uint32_t;

/// A span [begin, end> with 1-based positions and begin <= end.
struct Span {
  uint64_t begin = 0;
  uint64_t end = 0;

  bool operator==(const Span& o) const { return begin == o.begin && end == o.end; }
  bool operator<(const Span& o) const {
    return begin != o.begin ? begin < o.begin : end < o.end;
  }

  uint64_t length() const { return end - begin; }
  std::string ToString() const;
};

/// A span-tuple: one optional span per variable of the spanner. Variables
/// without a span are "undefined" (the paper's ⊥).
class SpanTuple {
 public:
  SpanTuple() = default;
  explicit SpanTuple(uint32_t num_vars) : spans_(num_vars) {}

  uint32_t num_vars() const { return static_cast<uint32_t>(spans_.size()); }

  const std::optional<Span>& Get(VarId v) const {
    SLPSPAN_DCHECK(v < spans_.size());
    return spans_[v];
  }

  void Set(VarId v, Span s) {
    SLPSPAN_DCHECK(v < spans_.size());
    SLPSPAN_DCHECK(s.begin >= 1 && s.begin <= s.end);
    spans_[v] = s;
  }

  void Clear(VarId v) {
    SLPSPAN_DCHECK(v < spans_.size());
    spans_[v].reset();
  }

  bool IsTotal() const {
    for (const auto& s : spans_) {
      if (!s.has_value()) return false;
    }
    return true;
  }

  bool operator==(const SpanTuple& o) const { return spans_ == o.spans_; }
  bool operator<(const SpanTuple& o) const;

  /// Renders e.g. "(x=[1,3>, y=⊥)" using variable names from `vars`.
  std::string ToString(const VariableSet& vars) const;

 private:
  std::vector<std::optional<Span>> spans_;
};

}  // namespace slpspan

#endif  // SLPSPAN_SPANNER_SPAN_H_
