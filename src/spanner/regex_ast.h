// AST for the spanner regex dialect.
//
// Syntax (see regex_parser.h for the grammar): ordinary regular expressions
// over bytes extended with *variable capture*  name{ ... }  which compiles to
// the marker pair  open(name) ... close(name)  — i.e. the subword-marked
// languages of paper Section 3. Example (the paper's introduction spanner):
//
//     (b|c)* x{a} .* y{c c*} .*
//
// Static well-formedness (ValidateVariableUsage) guarantees the compiled
// automaton accepts only subword-marked words: no capture inside * or +, and
// no variable that can occur twice on one concatenation path.

#ifndef SLPSPAN_SPANNER_REGEX_AST_H_
#define SLPSPAN_SPANNER_REGEX_AST_H_

#include <bitset>
#include <memory>
#include <string>
#include <vector>

#include "spanner/variables.h"
#include "util/status.h"

namespace slpspan {

using ByteSet = std::bitset<256>;

struct RegexNode;
using RegexPtr = std::unique_ptr<RegexNode>;

struct RegexNode {
  enum class Kind {
    kEpsilon,    ///< matches the empty word
    kCharClass,  ///< matches one byte from `cls`
    kConcat,     ///< children in sequence
    kUnion,      ///< any child
    kStar,       ///< child repeated >= 0 times
    kPlus,       ///< child repeated >= 1 times
    kOptional,   ///< child or empty
    kCapture,    ///< child wrapped in open(var)/close(var) markers
  };

  Kind kind;
  ByteSet cls;                     // kCharClass only
  VarId var = 0;                   // kCapture only
  std::vector<RegexPtr> children;  // arity: 0 / 1 / n by kind

  static RegexPtr Epsilon();
  static RegexPtr Class(const ByteSet& set);
  static RegexPtr Literal(unsigned char c);
  static RegexPtr Concat(std::vector<RegexPtr> parts);
  static RegexPtr Union(std::vector<RegexPtr> alts);
  static RegexPtr Star(RegexPtr inner);
  static RegexPtr Plus(RegexPtr inner);
  static RegexPtr Optional(RegexPtr inner);
  static RegexPtr Capture(VarId var, RegexPtr inner);
};

/// Bitmask over VarIds (bit v = variable v may be captured on some path).
using VarUsage = uint64_t;

/// Checks the two static rules that keep the compiled language a
/// subword-marked language:
///  (1) no capture occurs inside kStar/kPlus (a repeated marker),
///  (2) within a concatenation, the may-capture sets of the parts are
///      pairwise disjoint (conservative: rejects some harmless patterns,
///      never accepts a bad one). Returns the may-capture set via out-param.
Status ValidateVariableUsage(const RegexNode& node, VarUsage* may_use);

/// Debug rendering.
std::string RegexToString(const RegexNode& node, const VariableSet& vars);

}  // namespace slpspan

#endif  // SLPSPAN_SPANNER_REGEX_AST_H_
