// RefEvaluator — naive evaluation over the *uncompressed* text; the
// differential-testing oracle for every compressed algorithm.
#include "spanner/ref_eval.h"

#include <algorithm>

namespace slpspan {

namespace {

std::vector<SymbolId> DocWithSentinel(std::string_view doc) {
  std::vector<SymbolId> word = ToSymbols(doc);
  word.push_back(kSentinelSymbol);
  return word;
}

}  // namespace

RefEvaluator::RefEvaluator(const Spanner& spanner, bool determinize)
    : num_vars_(spanner.num_vars()) {
  const Nfa& norm = spanner.normalized();
  nonempty_nfa_ = Normalize(ProjectMarkersToEps(norm));
  model_nfa_ = norm;
  Nfa with_sentinel = AppendSentinel(norm);
  eval_nfa_ = determinize ? Determinize(with_sentinel) : with_sentinel;
}

bool RefEvaluator::CheckNonEmptiness(std::string_view doc) const {
  // State-set simulation over char arcs only.
  const uint32_t q = nonempty_nfa_.NumStates();
  std::vector<bool> cur(q, false), next(q, false);
  cur[0] = true;
  for (unsigned char c : doc) {
    std::fill(next.begin(), next.end(), false);
    bool any = false;
    for (StateId s = 0; s < q; ++s) {
      if (!cur[s]) continue;
      for (const Nfa::CharArc& a : nonempty_nfa_.CharArcsFrom(s)) {
        if (a.sym == c) {
          next[a.to] = true;
          any = true;
        }
      }
    }
    if (!any) return false;
    cur.swap(next);
  }
  for (StateId s = 0; s < q; ++s) {
    if (cur[s] && nonempty_nfa_.IsAccepting(s)) return true;
  }
  return false;
}

bool RefEvaluator::CheckModel(std::string_view doc, const SpanTuple& t) const {
  for (VarId v = 0; v < t.num_vars(); ++v) {
    const auto& s = t.Get(v);
    if (s.has_value() && (s->begin < 1 || s->end > doc.size() + 1)) return false;
  }
  SymbolTable table;
  const std::vector<SymbolId> word =
      MarkedWord(ToSymbols(doc), MarkerSeq::FromTuple(t), &table);
  return AcceptsSymbols(model_nfa_, word, &table);
}

std::vector<MarkerSeq> RefEvaluator::ComputeAllMarkers(std::string_view doc) const {
  const std::vector<SymbolId> word = DocWithSentinel(doc);
  const uint32_t q = eval_nfa_.NumStates();

  // Forward DP: per state, the ⪯-sorted list of partial marker sets of all
  // runs from the start state to that state over the processed prefix.
  std::vector<std::vector<MarkerSeq>> cur(q), next(q);
  cur[0].push_back(MarkerSeq());
  for (uint64_t pos = 1; pos <= word.size(); ++pos) {
    const SymbolId c = word[pos - 1];
    for (auto& list : next) list.clear();
    for (StateId p = 0; p < q; ++p) {
      if (cur[p].empty()) continue;
      for (const Nfa::CharArc& a : eval_nfa_.CharArcsFrom(p)) {
        if (a.sym != c) continue;
        next[a.to] = MergeSorted(std::move(next[a.to]), cur[p]);
      }
      for (const Nfa::MarkArc& ma : eval_nfa_.MarkArcsFrom(p)) {
        for (const Nfa::CharArc& a : eval_nfa_.CharArcsFrom(ma.to)) {
          if (a.sym != c) continue;
          // Appending the same (pos, mask) keeps the list ⪯-sorted
          // (monotonicity of the join; Lemma 6.9 / Theorem 7.1 proof).
          std::vector<MarkerSeq> shifted;
          shifted.reserve(cur[p].size());
          for (const MarkerSeq& m : cur[p]) {
            std::vector<PosMark> entries = m.entries();
            entries.push_back({pos, ma.mask});
            shifted.push_back(MarkerSeq(std::move(entries)));
          }
          next[a.to] = MergeSorted(std::move(next[a.to]), std::move(shifted));
        }
      }
    }
    cur.swap(next);
  }

  std::vector<MarkerSeq> out;
  for (StateId s = 0; s < q; ++s) {
    if (eval_nfa_.IsAccepting(s)) out = MergeSorted(std::move(out), std::move(cur[s]));
  }
  return out;
}

std::vector<SpanTuple> RefEvaluator::ComputeAll(std::string_view doc) const {
  std::vector<SpanTuple> out;
  for (const MarkerSeq& m : ComputeAllMarkers(doc)) {
    Result<SpanTuple> t = m.ToTuple(num_vars_);
    SLPSPAN_CHECK(t.ok());  // well-formed by spanner construction
    out.push_back(std::move(t).value());
  }
  return out;
}

RefEnumerator RefEvaluator::Enumerate(std::string_view doc) const {
  return RefEnumerator(&eval_nfa_, DocWithSentinel(doc), num_vars_);
}

// ---------------------------------------------------------------------------
// RefEnumerator
// ---------------------------------------------------------------------------

RefEnumerator::RefEnumerator(const Nfa* nfa, std::vector<SymbolId> word,
                             uint32_t num_vars)
    : nfa_(nfa), word_(std::move(word)), num_vars_(num_vars) {
  const uint32_t q = nfa_->NumStates();
  const size_t words = (q + 63) / 64;
  const uint64_t n = word_.size();

  // Backward co-accessibility: coacc_[pos] = states from which an accepting
  // state is reachable by reading word_[pos..n).
  coacc_.assign(n + 1, std::vector<uint64_t>(words, 0));
  for (StateId s = 0; s < q; ++s) {
    if (nfa_->IsAccepting(s)) coacc_[n][s >> 6] |= uint64_t{1} << (s & 63);
  }
  for (uint64_t pos = n; pos-- > 0;) {
    const SymbolId c = word_[pos];
    for (StateId p = 0; p < q; ++p) {
      bool ok = false;
      for (const Nfa::CharArc& a : nfa_->CharArcsFrom(p)) {
        if (a.sym == c && CoAccessible(pos + 1, a.to)) {
          ok = true;
          break;
        }
      }
      if (!ok) {
        for (const Nfa::MarkArc& ma : nfa_->MarkArcsFrom(p)) {
          for (const Nfa::CharArc& a : nfa_->CharArcsFrom(ma.to)) {
            if (a.sym == c && CoAccessible(pos + 1, a.to)) {
              ok = true;
              break;
            }
          }
          if (ok) break;
        }
      }
      if (ok) coacc_[pos][p >> 6] |= uint64_t{1} << (p & 63);
    }
  }

  if (!CoAccessible(0, 0)) return;  // empty result set
  Frame root{0, {}, 0};
  BuildMoves(&root, 0);
  stack_.push_back(std::move(root));
  valid_ = true;
  Advance();
}

void RefEnumerator::BuildMoves(Frame* f, uint64_t pos) const {
  f->moves.clear();
  f->next_move = 0;
  if (pos >= word_.size()) return;  // leaf layer
  const SymbolId c = word_[pos];
  for (const Nfa::CharArc& a : nfa_->CharArcsFrom(f->state)) {
    if (a.sym == c && CoAccessible(pos + 1, a.to)) f->moves.push_back({0, a.to});
  }
  for (const Nfa::MarkArc& ma : nfa_->MarkArcsFrom(f->state)) {
    for (const Nfa::CharArc& a : nfa_->CharArcsFrom(ma.to)) {
      if (a.sym == c && CoAccessible(pos + 1, a.to)) {
        f->moves.push_back({ma.mask, a.to});
      }
    }
  }
}

void RefEnumerator::Advance() {
  // Depth-first search over the trimmed product DAG; every maximal path ends
  // in an accepting leaf because of the co-accessibility pruning.
  const uint64_t n = word_.size();
  while (!stack_.empty()) {
    Frame& top = stack_.back();
    const uint64_t pos = stack_.size() - 1;
    if (pos == n) {
      // Accepting leaf reached: emit, then pop so the next Advance resumes.
      AssembleCurrent();
      stack_.pop_back();
      valid_ = true;
      return;
    }
    if (top.next_move >= top.moves.size()) {
      stack_.pop_back();
      if (!marks_.empty() && marks_.back().pos == pos) marks_.pop_back();
      continue;
    }
    const Move mv = top.moves[top.next_move++];
    if (mv.mask != 0) marks_.push_back({pos + 1, mv.mask});
    Frame child{mv.to, {}, 0};
    BuildMoves(&child, pos + 1);
    stack_.push_back(std::move(child));
  }
  valid_ = false;
}

void RefEnumerator::Next() {
  SLPSPAN_CHECK(valid_);
  // The accepting leaf was already popped; clean up any mask taken on the
  // edge into it, then resume the DFS.
  const uint64_t pos = stack_.size();  // position of the popped leaf
  if (!marks_.empty() && marks_.back().pos == pos) marks_.pop_back();
  Advance();
}

void RefEnumerator::AssembleCurrent() { current_ = MarkerSeq(marks_); }

SpanTuple RefEnumerator::Current() const {
  Result<SpanTuple> t = CurrentMarkers().ToTuple(num_vars_);
  SLPSPAN_CHECK(t.ok());
  return std::move(t).value();
}

}  // namespace slpspan
