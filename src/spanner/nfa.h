// Finite automata over Sigma ∪ P(Gamma_X) — paper Sections 2 and 3.2.
//
// An Nfa has three arc kinds:
//   * char arcs   labelled with a terminal SymbolId (byte or sentinel),
//   * mark arcs   labelled with a non-empty MarkerMask (a P(Gamma_X) symbol),
//   * eps arcs    (only in "raw" automata, e.g. fresh Thompson constructions).
//
// The evaluation algorithms require automata in *normalized* form: no eps
// arcs, mark arcs carrying fully merged marker sets (the extended-VA style
// set transitions of [Florenzano et al.], which the paper adopts). Normalize()
// produces this form from any raw automaton; Determinize() additionally
// yields the DFA required by the enumeration algorithm (Theorem 8.10).
//
// State 0 is always the start state (the paper's state 1).

#ifndef SLPSPAN_SPANNER_NFA_H_
#define SLPSPAN_SPANNER_NFA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "slp/slp.h"
#include "spanner/symbol_table.h"
#include "spanner/variables.h"

namespace slpspan {

using StateId = uint32_t;

/// Nondeterministic finite automaton over Sigma ∪ P(Gamma_X).
class Nfa {
 public:
  struct CharArc {
    SymbolId sym;
    StateId to;
  };
  struct MarkArc {
    MarkerMask mask;
    StateId to;
  };

  Nfa() { AddState(); }  // state 0 = start

  StateId AddState() {
    char_arcs_.emplace_back();
    mark_arcs_.emplace_back();
    eps_arcs_.emplace_back();
    accepting_.push_back(false);
    return static_cast<StateId>(accepting_.size() - 1);
  }

  uint32_t NumStates() const { return static_cast<uint32_t>(accepting_.size()); }

  void AddCharArc(StateId from, SymbolId sym, StateId to) {
    SLPSPAN_DCHECK(from < NumStates() && to < NumStates());
    char_arcs_[from].push_back({sym, to});
  }
  void AddMarkArc(StateId from, MarkerMask mask, StateId to) {
    SLPSPAN_DCHECK(from < NumStates() && to < NumStates());
    SLPSPAN_CHECK(mask != 0);
    mark_arcs_[from].push_back({mask, to});
  }
  void AddEpsArc(StateId from, StateId to) {
    SLPSPAN_DCHECK(from < NumStates() && to < NumStates());
    eps_arcs_[from].push_back(to);
  }

  void SetAccepting(StateId s, bool accepting = true) {
    SLPSPAN_DCHECK(s < NumStates());
    accepting_[s] = accepting;
  }
  bool IsAccepting(StateId s) const { return accepting_[s]; }
  bool HasAcceptingState() const;

  const std::vector<CharArc>& CharArcsFrom(StateId s) const { return char_arcs_[s]; }
  const std::vector<MarkArc>& MarkArcsFrom(StateId s) const { return mark_arcs_[s]; }
  const std::vector<StateId>& EpsArcsFrom(StateId s) const { return eps_arcs_[s]; }

  /// |M| in the paper: total number of transitions.
  uint64_t NumTransitions() const;

  bool HasEpsArcs() const;

  /// True if eps-free and no state has two arcs with the same label.
  bool IsDeterministic() const;

  std::string DebugString() const;

 private:
  std::vector<std::vector<CharArc>> char_arcs_;
  std::vector<std::vector<MarkArc>> mark_arcs_;
  std::vector<std::vector<StateId>> eps_arcs_;
  std::vector<bool> accepting_;
};

/// Collapses marker paths into merged set transitions (VA -> extended-VA) and
/// removes eps arcs. The result accepts exactly the merged-form subword-
/// marked words of the input's language. Paths repeating a marker are
/// discarded (they can never occur in a well-formed subword-marked word).
Nfa Normalize(const Nfa& raw);

/// Keeps only states that are reachable from the start *and* can reach an
/// accepting state. The start state is always kept. Input must be eps-free.
Nfa Trim(const Nfa& nfa);

/// The Section 6.1 transform L -> L·# that makes every spanner
/// non-tail-spanning: adds one fresh state f, an arc q --#--> f from every
/// accepting q, and makes f the only accepting state. Input must be eps-free.
Nfa AppendSentinel(const Nfa& nfa, SymbolId sentinel = kSentinelSymbol);

/// Replaces every mark arc by an eps arc (existential projection of the
/// markers — used by the non-emptiness check, Theorem 5.1(1)).
Nfa ProjectMarkersToEps(const Nfa& nfa);

/// Subset construction. Input must be eps-free; output is deterministic over
/// the symbols/masks that actually occur. `max_states` guards against
/// exponential blow-up (CHECK).
Nfa Determinize(const Nfa& nfa, uint32_t max_states = 1u << 20);

/// Simulates `nfa` (may contain eps arcs) on a symbol sequence that may
/// contain interned mask symbols; `table` decodes them (may be null if the
/// sequence has none). O(|word| * |M|).
bool AcceptsSymbols(const Nfa& nfa, const std::vector<SymbolId>& word,
                    const SymbolTable* table);

}  // namespace slpspan

#endif  // SLPSPAN_SPANNER_NFA_H_
