// Variable markers: open/close marker encoding, marker-set masks and their
// ordering/printing helpers.
#include "spanner/marker.h"

#include <algorithm>
#include <bit>
#include <sstream>

namespace slpspan {

MarkerSeq::MarkerSeq(std::vector<PosMark> entries) : entries_(std::move(entries)) {
  for (size_t i = 0; i < entries_.size(); ++i) {
    SLPSPAN_CHECK(entries_[i].marks != 0);
    SLPSPAN_CHECK(entries_[i].pos >= 1);
    if (i > 0) SLPSPAN_CHECK(entries_[i - 1].pos < entries_[i].pos);
  }
}

MarkerSeq MarkerSeq::FromTuple(const SpanTuple& t) {
  // Collect (position, mask) pairs; positions are at most 2 * num_vars many.
  std::vector<PosMark> entries;
  auto add = [&entries](uint64_t pos, MarkerMask m) {
    for (auto& e : entries) {
      if (e.pos == pos) {
        e.marks |= m;
        return;
      }
    }
    entries.push_back({pos, m});
  };
  for (VarId v = 0; v < t.num_vars(); ++v) {
    const auto& span = t.Get(v);
    if (!span.has_value()) continue;
    add(span->begin, OpenMarker(v));
    add(span->end, CloseMarker(v));
  }
  std::sort(entries.begin(), entries.end(),
            [](const PosMark& a, const PosMark& b) { return a.pos < b.pos; });
  return MarkerSeq(std::move(entries));
}

Result<SpanTuple> MarkerSeq::ToTuple(uint32_t num_vars) const {
  SpanTuple t(num_vars);
  std::vector<uint64_t> open_pos(num_vars, 0), close_pos(num_vars, 0);
  for (const PosMark& e : entries_) {
    MarkerMask m = e.marks;
    while (m != 0) {
      const int bit = std::countr_zero(m);
      m &= m - 1;
      const VarId v = static_cast<VarId>(bit / 2);
      if (v >= num_vars) return Status::InvalidArgument("marker for unknown variable");
      uint64_t& slot = (bit % 2 == 0) ? open_pos[v] : close_pos[v];
      if (slot != 0) return Status::InvalidArgument("duplicate marker for variable");
      slot = e.pos;
    }
  }
  for (VarId v = 0; v < num_vars; ++v) {
    if ((open_pos[v] == 0) != (close_pos[v] == 0)) {
      return Status::InvalidArgument("unmatched open/close marker");
    }
    if (open_pos[v] != 0) {
      if (open_pos[v] > close_pos[v]) {
        return Status::InvalidArgument("close marker before open marker");
      }
      t.Set(v, Span{open_pos[v], close_pos[v]});
    }
  }
  return t;
}

MarkerSeq MarkerSeq::RightShift(uint64_t shift) const {
  MarkerSeq out;
  out.entries_ = entries_;
  for (PosMark& e : out.entries_) e.pos += shift;
  return out;
}

MarkerSeq MarkerSeq::Join(const MarkerSeq& a, const MarkerSeq& b, uint64_t s) {
  SLPSPAN_DCHECK(a.entries_.empty() || a.entries_.back().pos <= s);
  MarkerSeq out;
  out.entries_.reserve(a.entries_.size() + b.entries_.size());
  out.entries_ = a.entries_;
  for (const PosMark& e : b.entries_) out.entries_.push_back({e.pos + s, e.marks});
  return out;
}

int MarkerSeq::Compare(const MarkerSeq& a, const MarkerSeq& b) {
  // Element-wise comparison of the flattened words <<Λ>> over Gamma_X × N:
  // per entry first by position, then by CompareMasks over the entry's
  // markers; if all compared elements agree and one word ends first, the
  // shorter (prefix) word is *larger* — matching the paper's order.
  const size_t n = std::min(a.entries_.size(), b.entries_.size());
  for (size_t idx = 0; idx < n; ++idx) {
    const PosMark& x = a.entries_[idx];
    const PosMark& y = b.entries_[idx];
    if (x.pos != y.pos) {
      // The first differing flattened element is the one at the smaller
      // position; the sequence holding it is smaller.
      return x.pos < y.pos ? -1 : 1;
    }
    const int c = CompareMasks(x.marks, y.marks);
    if (c != 0) return c;
  }
  if (a.entries_.size() == b.entries_.size()) return 0;
  return a.entries_.size() < b.entries_.size() ? 1 : -1;  // prefix is larger
}

uint32_t MarkerSeq::NumMarkers() const {
  uint32_t total = 0;
  for (const PosMark& e : entries_) {
    total += static_cast<uint32_t>(std::popcount(e.marks));
  }
  return total;
}

std::string MarkerSeq::ToString(const VariableSet& vars) const {
  std::ostringstream os;
  os << "{";
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (i > 0) os << ", ";
    os << entries_[i].pos << ":" << vars.MaskToString(entries_[i].marks);
  }
  os << "}";
  return os.str();
}

std::vector<MarkerSeq> MergeSorted(std::vector<MarkerSeq> a, std::vector<MarkerSeq> b) {
  if (a.empty()) return b;
  if (b.empty()) return a;
  std::vector<MarkerSeq> out;
  out.reserve(a.size() + b.size());
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    const int c = MarkerSeq::Compare(a[i], b[j]);
    if (c < 0) {
      out.push_back(std::move(a[i++]));
    } else if (c > 0) {
      out.push_back(std::move(b[j++]));
    } else {
      out.push_back(std::move(a[i++]));
      ++j;  // duplicate dropped
    }
  }
  while (i < a.size()) out.push_back(std::move(a[i++]));
  while (j < b.size()) out.push_back(std::move(b[j++]));
  return out;
}

bool IsSortedUnique(const std::vector<MarkerSeq>& v) {
  for (size_t i = 1; i < v.size(); ++i) {
    if (MarkerSeq::Compare(v[i - 1], v[i]) >= 0) return false;
  }
  return true;
}

}  // namespace slpspan
