// Partial marker sets Λ ("MarkerSeq") — paper Sections 3.1 and 6.1.
//
// A partial marker set is a finite set of (marker, position) pairs; we store
// it as a position-sorted sequence of (position, MarkerMask) entries with
// non-zero masks, i.e. exactly the non-empty sets A_i of the marked word
// m(D, Λ) = A_1 b_1 ... A_d b_d A_{d+1}.
//
// The three operations the evaluation algorithms are built from:
//   * RightShift  — the paper's rs_ℓ(Λ),
//   * Join(a, b, s) — the paper's a ⊗_s b = a ∪ rs_s(b)  (Definition 6.7),
//   * Compare     — the paper's total order ⪯ from the proof of Theorem 7.1,
//     including its "a proper prefix is *larger*" twist. That twist is what
//     makes ⊗_s monotone in both arguments, so joins of sorted lists are
//     sorted and unions can be merged with on-the-fly duplicate removal.

#ifndef SLPSPAN_SPANNER_MARKER_H_
#define SLPSPAN_SPANNER_MARKER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "spanner/span.h"
#include "spanner/variables.h"
#include "util/status.h"

namespace slpspan {

/// All markers occurring at one document position (mask is never 0 inside a
/// MarkerSeq).
struct PosMark {
  uint64_t pos = 0;        ///< 1-based position in [1, d+1]
  MarkerMask marks = 0;

  bool operator==(const PosMark& o) const { return pos == o.pos && marks == o.marks; }
};

/// A partial marker set Λ; immutable value type.
class MarkerSeq {
 public:
  MarkerSeq() = default;

  /// Builds from entries; they must be strictly increasing in position with
  /// non-zero masks (checked).
  explicit MarkerSeq(std::vector<PosMark> entries);

  /// The marker set \hat{t} of a span-tuple (paper Section 3).
  static MarkerSeq FromTuple(const SpanTuple& t);

  /// Reconstructs the span-tuple; fails if some variable has an unmatched or
  /// duplicated open/close marker (cannot happen for marker sets produced by
  /// well-formed spanners).
  Result<SpanTuple> ToTuple(uint32_t num_vars) const;

  /// rs_ℓ(Λ): every position shifted right by `shift`.
  MarkerSeq RightShift(uint64_t shift) const;

  /// a ⊗_s b = a ∪ rs_s(b). Precondition (checked): all positions of `a` are
  /// <= s, so the result is sorted by construction — this always holds when
  /// `a` describes a non-tail-spanning marked word of a length-s prefix.
  static MarkerSeq Join(const MarkerSeq& a, const MarkerSeq& b, uint64_t s);

  /// Total order ⪯: -1, 0, 1. See file comment.
  static int Compare(const MarkerSeq& a, const MarkerSeq& b);

  bool empty() const { return entries_.empty(); }
  size_t NumPositions() const { return entries_.size(); }
  /// Total number of (marker, position) pairs, <= 2|X|.
  uint32_t NumMarkers() const;
  uint64_t MaxPos() const { return entries_.empty() ? 0 : entries_.back().pos; }

  const std::vector<PosMark>& entries() const { return entries_; }

  bool operator==(const MarkerSeq& o) const { return entries_ == o.entries_; }
  bool operator<(const MarkerSeq& o) const { return Compare(*this, o) < 0; }

  std::string ToString(const VariableSet& vars) const;

 private:
  std::vector<PosMark> entries_;
};

/// Merges two ⪯-sorted, duplicate-free vectors into one (duplicates removed).
std::vector<MarkerSeq> MergeSorted(std::vector<MarkerSeq> a, std::vector<MarkerSeq> b);

/// True if `v` is strictly ⪯-increasing (sorted and duplicate-free).
bool IsSortedUnique(const std::vector<MarkerSeq>& v);

}  // namespace slpspan

#endif  // SLPSPAN_SPANNER_MARKER_H_
