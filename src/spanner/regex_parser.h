// Parser for the spanner regex dialect.
//
// Grammar:
//   expr    := term ('|' term)*          (an empty term is epsilon)
//   term    := factor*
//   factor  := atom ('*' | '+' | '?')*
//   atom    := '(' expr ')'
//            | IDENT '{' expr '}'        (variable capture; IDENT = [A-Za-z_]\w*)
//            | '[' ('^')? class-items ']'
//            | '.'                       (any alphabet byte)
//            | '\' c                     (escaped literal, incl. \n \t \\ ...)
//            | c                         (literal byte)
//
// Whether a letter run is a capture name or a literal is decided by one-token
// lookahead: letters immediately followed by '{' form a capture, otherwise
// the first letter is a single literal (so "ab*" parses as a(b*)). Literal
// bytes must belong to the declared alphabet; '.' and classes are restricted
// to it.

#ifndef SLPSPAN_SPANNER_REGEX_PARSER_H_
#define SLPSPAN_SPANNER_REGEX_PARSER_H_

#include <string_view>

#include "spanner/regex_ast.h"
#include "spanner/variables.h"
#include "util/status.h"

namespace slpspan {

/// Parses `pattern` over the given terminal alphabet; variable names are
/// interned into `vars` in order of first occurrence.
Result<RegexPtr> ParseRegex(std::string_view pattern, const ByteSet& alphabet,
                            VariableSet* vars);

/// Builds a ByteSet from the distinct bytes of `alphabet`.
ByteSet MakeAlphabet(std::string_view alphabet);

}  // namespace slpspan

#endif  // SLPSPAN_SPANNER_REGEX_PARSER_H_
